"""Simulated Linux kernel: system calls, memory management, threads.

System-call numbers, argument registers (rdi, rsi, rdx, r10, r8, r9) and
the negative-errno return convention follow the Linux x86-64 ABI, so PX
programs read like real Linux assembly.  Every user-memory write a
syscall performs is recorded in ``last_effects`` — the PinPlay logger
captures these as the side-effect-injection log that constrained replay
feeds back (paper §I-A).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.isa.registers import Flags
from repro.machine.memory import (
    PAGE_MASK,
    PROT_RW,
    PageFault,
    page_align_up,
)
from repro.machine.vfs import (
    Channel,
    FileDescriptorTable,
    FileSystem,
    O_CLOEXEC,
    O_NONBLOCK,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    OpenFile,
    VfsError,
)
from repro.observe import hooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine, Thread

MASK64 = (1 << 64) - 1


class NR:
    """Linux x86-64 syscall numbers (subset), plus two PMU pseudo-calls."""

    READ = 0
    WRITE = 1
    OPEN = 2
    CLOSE = 3
    LSEEK = 8
    MMAP = 9
    MPROTECT = 10
    MUNMAP = 11
    BRK = 12
    RT_SIGACTION = 13
    RT_SIGPROCMASK = 14
    RT_SIGRETURN = 15
    PIPE = 22
    SHMGET = 29
    SHMAT = 30
    SHMCTL = 31
    DUP = 32
    DUP2 = 33
    GETPID = 39
    SOCKET = 41
    CONNECT = 42
    ACCEPT = 43
    BIND = 49
    LISTEN = 50
    SOCKETPAIR = 53
    CLONE = 56
    EXIT = 60
    KILL = 62
    SHMDT = 67
    GETTIMEOFDAY = 96
    PRCTL = 157
    ARCH_PRCTL = 158
    TKILL = 200
    TIME = 201
    FUTEX = 202
    EXIT_GROUP = 231
    TGKILL = 234
    PIPE2 = 293
    #: perf_event_open stand-in: arms a per-thread retired-instruction
    #: counter with a threshold and an overflow-handler address.
    PERF_EVENT_OPEN = 298
    #: Pseudo-call to read a PMU counter (rdi selects the event).
    PERF_READ = 334

    NAMES: Dict[int, str] = {}


NR.NAMES = {
    value: name.lower()
    for name, value in vars(NR).items()
    if isinstance(value, int)
}

# errno values (returned as -errno).
EPERM, ENOENT, ESRCH, EINTR, EBADF, EAGAIN, ENOMEM = 1, 2, 3, 4, 9, 11, 12
EACCES, EFAULT, EINVAL, EMFILE, EPIPE, ENOSYS = 13, 14, 22, 24, 32, 38
EADDRINUSE, ENOTCONN, ECONNREFUSED = 98, 107, 111

# arch_prctl codes.
ARCH_SET_GS = 0x1001
ARCH_SET_FS = 0x1002
ARCH_GET_FS = 0x1003
ARCH_GET_GS = 0x1004

# prctl PR_SET_MM and sub-codes (heap layout restoration, paper §II-C2).
PR_SET_MM = 35
PR_SET_MM_START_BRK = 6
PR_SET_MM_BRK = 7

# mmap flags (subset).
MAP_PRIVATE = 0x02
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20

# futex ops.
FUTEX_WAIT = 0
FUTEX_WAKE = 1
FUTEX_PRIVATE_FLAG = 128

# clone flags (only CLONE_VM threads are supported).
CLONE_VM = 0x100

# Signal model: Linux numbering, bit N-1 of a mask = signal N.
SIG_DFL = 0
SIG_IGN = 1
SIGKILL = 9
NSIG = 64
# rt_sigprocmask(2) how values.
SIG_BLOCK, SIG_UNBLOCK, SIG_SETMASK = 0, 1, 2
#: Guest sigaction struct (simplified): handler u64 at +0, mask u64 at +8.
SIGACT_SIZE = 16
#: Signal frame pushed on delivery: 16 GPRs, rip, rflags, saved sigmask.
SIGFRAME_QWORDS = 19
SIGFRAME_SIZE = SIGFRAME_QWORDS * 8
#: x86-64 red zone skipped below rsp before the frame is pushed.
RED_ZONE = 128

# Socket model constants.
AF_UNIX = 1
AF_INET = 2

# SysV shared-memory constants.
IPC_PRIVATE = 0
IPC_RMID = 0
IPC_CREAT = 0o1000
#: shmat flag: replace any existing mapping in the target range.  Used
#: by ELFie startup code to re-adopt a segment that was attached at
#: capture time (its pages ship as ELF sections, so the range is
#: already occupied when the restore shmat runs).
SHM_REMAP = 0o40000

# PMU event codes for PERF_EVENT_OPEN / PERF_READ.
PERF_COUNT_INSTRUCTIONS = 0
PERF_COUNT_CYCLES = 1
PERF_COUNT_LLC_MISSES = 2
PERF_COUNT_BRANCHES = 3

#: Syscalls that mutate kernel/machine state constrained replay must
#: re-execute natively (result-compared) instead of injecting from the
#: record.  Channel-touching READ/WRITE/CLOSE/DUP/DUP2 are flagged
#: per-call via ``Kernel.last_native`` since the same numbers are
#: injected when they hit plain files.
KERNEL_STATE_SYSCALLS = frozenset({
    NR.CLONE, NR.EXIT, NR.EXIT_GROUP, NR.FUTEX, NR.MMAP, NR.MUNMAP,
    NR.MPROTECT, NR.BRK, NR.PERF_EVENT_OPEN,
    NR.RT_SIGACTION, NR.RT_SIGPROCMASK, NR.RT_SIGRETURN,
    NR.KILL, NR.TKILL, NR.TGKILL,
    NR.PIPE, NR.PIPE2, NR.SOCKET, NR.CONNECT, NR.ACCEPT, NR.BIND,
    NR.LISTEN, NR.SOCKETPAIR,
    NR.SHMGET, NR.SHMAT, NR.SHMCTL, NR.SHMDT,
})


class SyscallError(Exception):
    """Internal kernel error (bad machine state, not a guest errno)."""


@dataclass
class ShmSegment:
    """One SysV shared-memory segment.

    While attached the authoritative bytes live in the address space;
    ``shmdt`` copies them back so a later ``shmat`` (possibly from a
    different thread, possibly at a different address) observes them.
    One attach at a time keeps the copy-in/copy-out model coherent.
    """

    shmid: int
    key: int
    size: int
    data: bytearray = field(default_factory=bytearray)
    attached_at: Optional[int] = None
    attached_len: int = 0


@dataclass
class Listener:
    """A listening AF_INET socket's accept queue.

    ``queue`` holds (read_cid, write_cid) channel pairs of connections
    not yet accepted; ``wait_cid`` is the channel id accept-blocked
    threads wait on (woken by connect).
    """

    port: int
    backlog: int
    queue: List[Tuple[int, int]] = field(default_factory=list)
    wait_cid: int = 0


class Kernel:
    """System-call layer bound to one :class:`Machine`."""

    #: Simulated CPU frequency for converting cycles to wall time.
    CYCLES_PER_SEC = 1_000_000_000
    #: Simulated boot wall-clock (seconds since epoch).
    BOOT_EPOCH = 1_600_000_000

    def __init__(self, machine: "Machine", fs: Optional[FileSystem] = None,
                 root: str = "/") -> None:
        self.machine = machine
        self.fs = fs if fs is not None else FileSystem()
        self.fdt = FileDescriptorTable(self.fs, root=root)
        self.pid = 1000
        self.brk_start = 0
        self.brk_end = 0
        #: User-memory writes performed by the most recent syscall,
        #: as (address, bytes) pairs.  Consumed by the PinPlay logger.
        self.last_effects: List[Tuple[int, bytes]] = []
        #: Names of syscalls executed (for tests and sysstate analysis).
        self.trace: List[str] = []
        self.last_native = False
        self._futex_waiters: Dict[int, List[int]] = {}
        #: Installed signal handlers: signum -> (handler, act_mask).
        self.sigactions: Dict[int, Tuple[int, int]] = {}
        #: Process-directed pending signals (kill(2)); thread-directed
        #: pending bits live on each Thread.
        self.process_pending = 0
        #: Pipe/socket byte streams by channel id.
        self.channels: Dict[int, Channel] = {}
        self._next_channel_id = 1
        #: Threads blocked on a channel (read/write/accept), FIFO per id.
        self._channel_waiters: Dict[int, List[int]] = {}
        #: Listening AF_INET sockets by port.
        self._listeners: Dict[int, Listener] = {}
        #: SysV shared-memory segments by shmid.
        self.shm_segments: Dict[int, ShmSegment] = {}
        self._next_shmid = 1
        self.fdt.channel_release_hook = self._on_channel_release
        self._dispatch: Dict[int, Callable[["Thread"], int]] = {
            NR.READ: self._sys_read,
            NR.WRITE: self._sys_write,
            NR.OPEN: self._sys_open,
            NR.CLOSE: self._sys_close,
            NR.LSEEK: self._sys_lseek,
            NR.MMAP: self._sys_mmap,
            NR.MPROTECT: self._sys_mprotect,
            NR.MUNMAP: self._sys_munmap,
            NR.BRK: self._sys_brk,
            NR.RT_SIGACTION: self._sys_rt_sigaction,
            NR.RT_SIGPROCMASK: self._sys_rt_sigprocmask,
            NR.RT_SIGRETURN: self._sys_rt_sigreturn,
            NR.PIPE: self._sys_pipe,
            NR.PIPE2: self._sys_pipe2,
            NR.SHMGET: self._sys_shmget,
            NR.SHMAT: self._sys_shmat,
            NR.SHMCTL: self._sys_shmctl,
            NR.SHMDT: self._sys_shmdt,
            NR.SOCKET: self._sys_socket,
            NR.CONNECT: self._sys_connect,
            NR.ACCEPT: self._sys_accept,
            NR.BIND: self._sys_bind,
            NR.LISTEN: self._sys_listen,
            NR.SOCKETPAIR: self._sys_socketpair,
            NR.KILL: self._sys_kill,
            NR.TKILL: self._sys_tkill,
            NR.TGKILL: self._sys_tgkill,
            NR.DUP: self._sys_dup,
            NR.DUP2: self._sys_dup2,
            NR.GETPID: self._sys_getpid,
            NR.CLONE: self._sys_clone,
            NR.EXIT: self._sys_exit,
            NR.GETTIMEOFDAY: self._sys_gettimeofday,
            NR.PRCTL: self._sys_prctl,
            NR.ARCH_PRCTL: self._sys_arch_prctl,
            NR.TIME: self._sys_time,
            NR.FUTEX: self._sys_futex,
            NR.EXIT_GROUP: self._sys_exit_group,
            NR.PERF_EVENT_OPEN: self._sys_perf_event_open,
            NR.PERF_READ: self._sys_perf_read,
        }

    # -- helpers ----------------------------------------------------------

    def _write_user(self, addr: int, data: bytes) -> None:
        """Write guest memory, recording the effect for the logger."""
        self.machine.mem.write(addr, data)
        self.last_effects.append((addr, data))

    def set_brk(self, start: int, end: Optional[int] = None) -> None:
        """Initialize the heap break (called by the loader)."""
        self.brk_start = start
        self.brk_end = end if end is not None else start

    def wall_time(self) -> Tuple[int, int]:
        """Current simulated (seconds, microseconds)."""
        cycles = self.machine.total_cycles()
        seconds = self.BOOT_EPOCH + cycles // self.CYCLES_PER_SEC
        usec = (cycles % self.CYCLES_PER_SEC) // 1000
        return seconds, usec

    # -- dispatch -----------------------------------------------------------

    def dispatch(self, thread: "Thread") -> int:
        """Execute the syscall selected by the thread's rax.

        Sets rax to the result (or -errno) and returns it.
        """
        number = thread.regs.gpr[0]
        self.last_effects = []
        #: Whether this call must re-execute natively under constrained
        #: replay (captured per-record by the PinPlay logger).
        self.last_native = number in KERNEL_STATE_SYSCALLS
        handler = self._dispatch.get(number)
        name = NR.NAMES.get(number, "nr_%d" % number)
        self.trace.append(name)
        obs = hooks.OBS
        if obs.enabled:
            obs.count("kernel.syscalls")
            obs.count("kernel.syscall.%s" % name)
        if handler is None:
            result = -ENOSYS
        else:
            try:
                result = handler(thread)
            except VfsError as exc:
                result = -exc.errno
        thread.regs.gpr[0] = result & MASK64
        return result

    # -- file I/O -----------------------------------------------------------

    def _sys_read(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        fd, buf, count = gpr[7], gpr[6], gpr[2]
        open_file = self.fdt.entry(fd)
        channel = open_file.read_ch
        if channel is not None:
            self.last_native = True
            if not channel.data:
                if channel.writers == 0:
                    return 0  # every write end closed: EOF
                if open_file.flags & O_NONBLOCK:
                    return -EAGAIN
                return self._block_on_channel(thread, channel.cid)
            data = bytes(channel.data[:count])
            del channel.data[: len(data)]
            if data:
                self._write_user(buf, data)
            self._wake_channel(channel.cid)  # writers waiting for space
            return len(data)
        if open_file.kind == "socket":
            return -ENOTCONN
        data = self.fdt.read(fd, count)
        if data:
            self._write_user(buf, data)
        return len(data)

    def _sys_write(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        fd, buf, count = gpr[7], gpr[6], gpr[2]
        open_file = self.fdt.entry(fd)
        channel = open_file.write_ch
        if channel is not None:
            self.last_native = True
            if channel.readers == 0:
                return -EPIPE  # no read end left; no SIGPIPE model
            if count == 0:
                return 0
            space = channel.space
            if space <= 0:
                if open_file.flags & O_NONBLOCK:
                    return -EAGAIN
                return self._block_on_channel(thread, channel.cid)
            data = self.machine.mem.read(buf, min(count, space))
            channel.data += data
            self._wake_channel(channel.cid)  # readers waiting for bytes
            return len(data)
        if open_file.kind == "socket":
            return -ENOTCONN
        data = self.machine.mem.read(buf, count) if count else b""
        return self.fdt.write(fd, data)

    def _sys_open(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        path = self.machine.mem.read_cstring(gpr[7]).decode("utf-8", "replace")
        flags = gpr[6]
        return self.fdt.open(path, flags)

    def _sys_close(self, thread: "Thread") -> int:
        fd = thread.regs.gpr[7]
        if self._fd_is_channel(fd):
            self.last_native = True
        self.fdt.close(fd)
        return 0

    def _fd_is_channel(self, fd: int) -> bool:
        open_file = self.fdt._fds.get(fd)
        return open_file is not None and (open_file.read_ch is not None
                                          or open_file.write_ch is not None)

    def _sys_lseek(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        offset = gpr[6]
        if offset & (1 << 63):
            offset -= 1 << 64
        return self.fdt.lseek(gpr[7], offset, gpr[2])

    def _sys_dup(self, thread: "Thread") -> int:
        fd = thread.regs.gpr[7]
        if self._fd_is_channel(fd):
            self.last_native = True
        return self.fdt.dup(fd)

    def _sys_dup2(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        if self._fd_is_channel(gpr[7]) or self._fd_is_channel(gpr[6]):
            self.last_native = True
        return self.fdt.dup2(gpr[7], gpr[6])

    # -- memory --------------------------------------------------------------

    def _sys_mmap(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        addr, length, prot = gpr[7], gpr[6], gpr[2]
        flags, fd, offset = gpr[10], gpr[8], gpr[9]
        if length == 0:
            return -EINVAL
        if not flags & MAP_ANONYMOUS and offset & PAGE_MASK:
            return -EINVAL
        if flags & MAP_FIXED:
            # MAP_FIXED: the address is a requirement, not a hint, and
            # must be page-aligned.  The overlapped range is atomically
            # replaced: explicit unmap-then-map so every stale page —
            # including executable ones feeding the superblock/compiled
            # caches — is retired before the new mapping appears.
            if addr == 0 or addr & PAGE_MASK:
                return -EINVAL
            base = addr
            if self.machine.mem.any_mapped(base, length):
                self.machine.mem.unmap(base, length)
        elif addr and not self.machine.mem.any_mapped(addr, length):
            base = addr
        else:
            base = self.machine.mem.find_free_range(length)
        self.machine.mem.map(base, length, prot if prot else PROT_RW)
        if not flags & MAP_ANONYMOUS:
            fd_signed = fd if fd < (1 << 63) else fd - (1 << 64)
            if fd_signed >= 0:
                # pread-style: never moves the open file description's
                # offset, which dup'ed descriptors share.
                try:
                    data = self.fdt.pread(fd_signed, length, offset)
                except VfsError as exc:
                    return -exc.errno
                if data:
                    self._write_user(base, data)
        return base

    def _sys_mprotect(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        addr, length, prot = gpr[7], gpr[6], gpr[2]
        if addr & PAGE_MASK or length == 0:
            return -EINVAL
        if not self.machine.mem.protect_mapped(addr, length, prot):
            return -ENOMEM
        return 0

    def _sys_munmap(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        if gpr[6] == 0 or gpr[7] & PAGE_MASK:
            return -EINVAL
        self.machine.mem.unmap(gpr[7], gpr[6])
        return 0

    def _sys_brk(self, thread: "Thread") -> int:
        request = thread.regs.gpr[7]
        if request == 0 or request < self.brk_start:
            return self.brk_end
        new_end = request
        if new_end > self.brk_end:
            start = page_align_up(self.brk_end)
            end = page_align_up(new_end)
            if end > start:
                self.machine.mem.map(start, end - start, PROT_RW)
        elif new_end < self.brk_end:
            # A shrinking break releases the pages above it; leaving them
            # mapped would let a "freed" heap read silently succeed.
            start = page_align_up(new_end)
            end = page_align_up(self.brk_end)
            if end > start:
                self.machine.mem.unmap(start, end - start)
        self.brk_end = new_end
        return self.brk_end

    # -- process / thread ------------------------------------------------------

    def _sys_getpid(self, thread: "Thread") -> int:
        return self.pid

    def _sys_clone(self, thread: "Thread") -> int:
        """clone(flags, child_stack, fn).

        Follows the glibc-wrapper convention the paper's startup code
        relies on: the child starts executing at *fn* with rsp set to
        *child_stack*; with fn == 0 the child resumes at the parent's
        next instruction with rax == 0.
        """
        gpr = thread.regs.gpr
        child_stack, fn = gpr[6], gpr[2]
        child = self.machine.create_thread(parent=thread)
        child.sigmask = thread.sigmask  # inherited; pending bits are not
        if child_stack:
            child.regs.gpr[4] = child_stack
        if fn:
            child.regs.rip = fn
        child.regs.gpr[0] = 0
        return child.tid

    def _sys_exit(self, thread: "Thread") -> int:
        code = thread.regs.gpr[7] & 0xFF
        thread.alive = False
        thread.exit_code = code
        self.machine.on_thread_exited(thread)
        return 0

    def _sys_exit_group(self, thread: "Thread") -> int:
        code = thread.regs.gpr[7] & 0xFF
        self.machine.exit_process(code)
        return 0

    # -- time ---------------------------------------------------------------

    def _sys_gettimeofday(self, thread: "Thread") -> int:
        tv_addr = thread.regs.gpr[7]
        if tv_addr:
            seconds, usec = self.wall_time()
            self._write_user(tv_addr, struct.pack("<qq", seconds, usec))
        return 0

    def _sys_time(self, thread: "Thread") -> int:
        seconds, _ = self.wall_time()
        out_addr = thread.regs.gpr[7]
        if out_addr:
            self._write_user(out_addr, struct.pack("<q", seconds))
        return seconds

    # -- prctl family ---------------------------------------------------------

    def _sys_prctl(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        option, arg2, arg3 = gpr[7], gpr[6], gpr[2]
        if option == PR_SET_MM:
            if arg2 == PR_SET_MM_START_BRK:
                self.brk_start = arg3
                if self.brk_end < arg3:
                    self.brk_end = arg3
                return 0
            if arg2 == PR_SET_MM_BRK:
                self.brk_end = arg3
                if self.brk_start == 0 or self.brk_start > arg3:
                    self.brk_start = arg3
                return 0
            return -EINVAL
        return -EINVAL

    def _sys_arch_prctl(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        code, addr = gpr[7], gpr[6]
        if code == ARCH_SET_FS:
            thread.regs.fs_base = addr
            return 0
        if code == ARCH_SET_GS:
            thread.regs.gs_base = addr
            return 0
        if code == ARCH_GET_FS:
            self._write_user(addr, struct.pack("<Q", thread.regs.fs_base))
            return 0
        if code == ARCH_GET_GS:
            self._write_user(addr, struct.pack("<Q", thread.regs.gs_base))
            return 0
        return -EINVAL

    # -- futex ------------------------------------------------------------------

    def _sys_futex(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        uaddr, op, val = gpr[7], gpr[6] & ~FUTEX_PRIVATE_FLAG, gpr[2]
        if op == FUTEX_WAIT:
            current = self.machine.mem.read_u32(uaddr)
            if current != val & 0xFFFFFFFF:
                return -EAGAIN
            thread.blocked = True
            thread.futex_addr = uaddr
            self._futex_waiters.setdefault(uaddr, []).append(thread.tid)
            return 0
        if op == FUTEX_WAKE:
            waiters = self._futex_waiters.get(uaddr, [])
            woken = 0
            while waiters and woken < val:
                tid = waiters.pop(0)
                waiter = self.machine.threads.get(tid)
                if waiter is not None and waiter.blocked:
                    waiter.blocked = False
                    waiter.futex_addr = None
                    woken += 1
            return woken
        return -ENOSYS

    # -- signals -----------------------------------------------------------------

    def _sys_rt_sigaction(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        signum, act, oldact = gpr[7], gpr[6], gpr[2]
        if not 1 <= signum <= NSIG or signum == SIGKILL:
            return -EINVAL
        if oldact:
            handler, mask = self.sigactions.get(signum, (SIG_DFL, 0))
            self._write_user(oldact, struct.pack("<QQ", handler, mask))
        if act:
            blob = self.machine.mem.read(act, SIGACT_SIZE)
            handler, mask = struct.unpack("<QQ", blob)
            if handler == SIG_DFL:
                self.sigactions.pop(signum, None)
            else:
                self.sigactions[signum] = (handler, mask)
        return 0

    def _sys_rt_sigprocmask(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        how, nset, oset = gpr[7], gpr[6], gpr[2]
        if oset:
            self._write_user(oset, struct.pack("<Q", thread.sigmask))
        if nset:
            mask = struct.unpack("<Q", self.machine.mem.read(nset, 8))[0]
            if how == SIG_BLOCK:
                thread.sigmask |= mask
            elif how == SIG_UNBLOCK:
                thread.sigmask &= ~mask
            elif how == SIG_SETMASK:
                thread.sigmask = mask
            else:
                return -EINVAL
            thread.sigmask &= ~(1 << (SIGKILL - 1))  # SIGKILL: unblockable
            if (thread.pending | self.process_pending) & ~thread.sigmask:
                # Unblocking revealed a pending signal: deliver promptly.
                self.machine.cpu.yield_flag = True
        return 0

    def _sys_rt_sigreturn(self, thread: "Thread") -> int:
        """Pop the signal frame the kernel pushed at delivery.

        The handler must return with rsp pointing at the frame (i.e.
        balanced pushes/pops).  The restored rax is returned so the
        dispatch epilogue's rax write-back is a no-op.
        """
        regs = thread.regs
        frame = self.machine.mem.read(regs.gpr[4], SIGFRAME_SIZE)
        values = struct.unpack("<%dQ" % SIGFRAME_QWORDS, frame)
        regs.gpr[:] = list(values[:16])
        regs.rip = values[16]
        regs.flags = Flags.from_word(values[17])
        thread.sigmask = values[18] & ~(1 << (SIGKILL - 1))
        if (thread.pending | self.process_pending) & ~thread.sigmask:
            # Returning restored a mask that admits a pending signal.
            self.machine.cpu.yield_flag = True
        return regs.gpr[0]

    def _post_signal(self, signum: int) -> int:
        if not 1 <= signum <= NSIG:
            return -EINVAL
        self.process_pending |= 1 << (signum - 1)
        # End the slice so delivery (a quantum-boundary event) happens
        # before much more of the raiser's quantum retires.
        self.machine.cpu.yield_flag = True
        return 0

    def _sys_kill(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        pid, signum = gpr[7], gpr[6]
        if pid != self.pid:
            return -ESRCH
        if signum == 0:
            return 0  # existence probe
        return self._post_signal(signum)

    def _kill_thread(self, tid: int, signum: int) -> int:
        target = self.machine.threads.get(tid)
        if target is None or not target.alive:
            return -ESRCH
        if not 1 <= signum <= NSIG:
            return -EINVAL
        target.pending |= 1 << (signum - 1)
        self.machine.cpu.yield_flag = True
        return 0

    def _sys_tkill(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        return self._kill_thread(gpr[7], gpr[6])

    def _sys_tgkill(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        if gpr[7] != self.pid:
            return -ESRCH
        return self._kill_thread(gpr[6], gpr[2])

    def deliver_pending_signals(self) -> None:
        """Deliver at most one pending, unblocked signal per thread.

        Called by the machine's run loop at quantum boundaries (never
        while a cut slice's remainder is parked), which makes delivery a
        deterministic function of kernel state — record and replay hit
        the same boundaries, so no delivery log is needed.
        """
        machine = self.machine
        if not self.process_pending and not any(
                t.pending for t in machine.threads.values()):
            return
        kill_bit = 1 << (SIGKILL - 1)
        for tid in sorted(machine.threads):
            thread = machine.threads[tid]
            if not thread.alive:
                continue
            pending = thread.pending | self.process_pending
            deliverable = pending & ~thread.sigmask
            deliverable |= pending & kill_bit
            if not deliverable:
                continue
            signum = (deliverable & -deliverable).bit_length()
            self._deliver_signal(thread, signum)
            if machine.exit_status is not None:
                return

    def _deliver_signal(self, thread: "Thread", signum: int) -> None:
        machine = self.machine
        bit = 1 << (signum - 1)
        if thread.pending & bit:
            thread.pending &= ~bit
        else:
            self.process_pending &= ~bit
        handler, act_mask = self.sigactions.get(signum, (SIG_DFL, 0))
        if signum == SIGKILL or handler == SIG_DFL:
            machine.deliver_fault(thread, signum,
                                  "unhandled signal %d" % signum)
            return
        if handler == SIG_IGN:
            return
        obs = hooks.OBS
        if obs.enabled:
            obs.count("kernel.signals_delivered")
        regs = thread.regs
        if thread.blocked:
            # Interrupt the blocking syscall.  A futex wait completes
            # with -EINTR (the frame below captures that rax, so the
            # handler returns into the EINTR path).  A channel wait was
            # parked with rip rewound onto the SYSCALL instruction, so
            # the handler returns into a transparent restart
            # (SA_RESTART semantics).
            if thread.futex_addr is not None:
                waiters = self._futex_waiters.get(thread.futex_addr)
                if waiters and thread.tid in waiters:
                    waiters.remove(thread.tid)
                thread.futex_addr = None
                regs.gpr[0] = (-EINTR) & MASK64
            elif thread.wait_channel is not None:
                waiters = self._channel_waiters.get(thread.wait_channel)
                if waiters and thread.tid in waiters:
                    waiters.remove(thread.tid)
                thread.wait_channel = None
            thread.blocked = False
        frame = struct.pack(
            "<%dQ" % SIGFRAME_QWORDS,
            *[value & MASK64 for value in regs.gpr],
            regs.rip & MASK64, regs.flags.to_word(), thread.sigmask,
        )
        frame_addr = (regs.gpr[4] - RED_ZONE - SIGFRAME_SIZE) & ~0xF
        try:
            machine.mem.write(frame_addr, frame)
        except PageFault as exc:
            machine.deliver_fault(thread, 11,
                                  "signal frame push faulted: %s" % exc,
                                  fault_address=exc.address)
            return
        thread.sigmask |= act_mask | bit
        regs.gpr[4] = frame_addr
        regs.gpr[7] = signum
        regs.rip = handler & MASK64
        thread.new_block = True

    # -- pipes / sockets ---------------------------------------------------------

    def _new_channel(self) -> Channel:
        cid = self._next_channel_id
        self._next_channel_id += 1
        channel = Channel(cid=cid)
        self.channels[cid] = channel
        return channel

    def _wake_channel(self, cid: int) -> None:
        """Unblock every thread waiting on channel *cid*.

        Woken threads re-execute their rewound syscall when scheduled
        and re-block if the condition still does not hold.
        """
        for tid in self._channel_waiters.pop(cid, []):
            waiter = self.machine.threads.get(tid)
            if (waiter is not None and waiter.blocked
                    and waiter.wait_channel == cid):
                waiter.blocked = False
                waiter.wait_channel = None

    def _block_on_channel(self, thread: "Thread", cid: int) -> int:
        """Park *thread* until channel *cid* changes, restart-style.

        rip is rewound onto the SYSCALL instruction and rax still holds
        the syscall number, so waking the thread re-executes the call
        with its original arguments.
        """
        thread.blocked = True
        thread.wait_channel = cid
        self._channel_waiters.setdefault(cid, []).append(thread.tid)
        thread.regs.rip = (thread.regs.rip - 1) & MASK64
        return thread.regs.gpr[0]

    def _on_channel_release(self, open_file: OpenFile) -> None:
        """A descriptor referencing channel endpoints was dropped: wake
        blocked peers so they can observe EOF or EPIPE."""
        for channel in (open_file.read_ch, open_file.write_ch):
            if channel is not None:
                self._wake_channel(channel.cid)

    def _pipe_common(self, thread: "Thread", flags: int) -> int:
        if flags & ~(O_NONBLOCK | O_CLOEXEC):
            return -EINVAL
        fds_ptr = thread.regs.gpr[7]
        status = O_NONBLOCK if flags & O_NONBLOCK else 0
        channel = self._new_channel()
        name = "pipe:[%d]" % channel.cid
        read_fd = self.fdt.install(OpenFile(
            path=name, flags=O_RDONLY | status, kind="pipe",
            read_ch=channel))
        try:
            write_fd = self.fdt.install(OpenFile(
                path=name, flags=O_WRONLY | status, kind="pipe",
                write_ch=channel))
        except VfsError:
            self.fdt.close(read_fd)
            raise
        self._write_user(fds_ptr, struct.pack("<ii", read_fd, write_fd))
        return 0

    def _sys_pipe(self, thread: "Thread") -> int:
        return self._pipe_common(thread, 0)

    def _sys_pipe2(self, thread: "Thread") -> int:
        return self._pipe_common(thread, thread.regs.gpr[6])

    def _sys_socketpair(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        domain, sv_ptr = gpr[7], gpr[10]
        if domain not in (AF_UNIX, AF_INET):
            return -EINVAL
        first = self._new_channel()
        second = self._new_channel()
        name = "socket:[%d:%d]" % (first.cid, second.cid)
        fd0 = self.fdt.install(OpenFile(
            path=name, flags=O_RDWR, kind="socket",
            read_ch=first, write_ch=second))
        try:
            fd1 = self.fdt.install(OpenFile(
                path=name, flags=O_RDWR, kind="socket",
                read_ch=second, write_ch=first))
        except VfsError:
            self.fdt.close(fd0)
            raise
        self._write_user(sv_ptr, struct.pack("<ii", fd0, fd1))
        return 0

    def _sys_socket(self, thread: "Thread") -> int:
        domain = thread.regs.gpr[7]
        if domain not in (AF_UNIX, AF_INET):
            return -EINVAL
        return self.fdt.install(OpenFile(
            path="socket:[unconnected]", flags=O_RDWR, kind="socket"))

    def _read_port(self, addr_ptr: int) -> int:
        """Port from a guest sockaddr_in (sin_port, network byte order)."""
        return int.from_bytes(self.machine.mem.read(addr_ptr + 2, 2), "big")

    def _sys_bind(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        fd, addr_ptr = gpr[7], gpr[6]
        open_file = self.fdt.entry(fd)
        if open_file.kind != "socket" or open_file.read_ch is not None:
            return -EINVAL
        port = self._read_port(addr_ptr)
        if port in self._listeners:
            return -EADDRINUSE
        open_file.bound_port = port
        return 0

    def _sys_listen(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        fd, backlog = gpr[7], gpr[6]
        open_file = self.fdt.entry(fd)
        if open_file.kind != "socket" or open_file.bound_port is None:
            return -EINVAL
        port = open_file.bound_port
        if port not in self._listeners:
            self._listeners[port] = Listener(
                port=port, backlog=max(1, backlog),
                wait_cid=self._new_channel().cid)
        return 0

    def _sys_connect(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        fd, addr_ptr = gpr[7], gpr[6]
        open_file = self.fdt.entry(fd)
        if open_file.kind != "socket" or open_file.read_ch is not None:
            return -EINVAL
        port = self._read_port(addr_ptr)
        listener = self._listeners.get(port)
        if listener is None or len(listener.queue) >= listener.backlog:
            return -ECONNREFUSED
        to_server = self._new_channel()
        to_client = self._new_channel()
        # Wire the client end in place; every descriptor sharing this
        # open-file description becomes connected at once.
        refs = sum(1 for of in self.fdt._fds.values() if of is open_file)
        open_file.read_ch = to_client
        open_file.write_ch = to_server
        open_file.path = "socket:[%d:%d]" % (to_client.cid, to_server.cid)
        to_client.readers += refs
        to_server.writers += refs
        # The queued server end holds one reference on each channel until
        # accept() materializes it as a descriptor.
        to_server.readers += 1
        to_client.writers += 1
        listener.queue.append((to_server.cid, to_client.cid))
        self._wake_channel(listener.wait_cid)
        return 0

    def _sys_accept(self, thread: "Thread") -> int:
        fd = thread.regs.gpr[7]
        open_file = self.fdt.entry(fd)
        if open_file.kind != "socket" or open_file.bound_port is None:
            return -EINVAL
        listener = self._listeners.get(open_file.bound_port)
        if listener is None:
            return -EINVAL
        if not listener.queue:
            if open_file.flags & O_NONBLOCK:
                return -EAGAIN
            return self._block_on_channel(thread, listener.wait_cid)
        read_cid, write_cid = listener.queue.pop(0)
        read_ch = self.channels[read_cid]
        write_ch = self.channels[write_cid]
        new_fd = self.fdt.install(OpenFile(
            path="socket:[%d:%d]" % (read_cid, write_cid), flags=O_RDWR,
            kind="socket", read_ch=read_ch, write_ch=write_ch))
        # Drop the queue's references now that the descriptor holds its own.
        read_ch.readers -= 1
        write_ch.writers -= 1
        return new_fd

    # -- SysV shared memory --------------------------------------------------------

    def _sys_shmget(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        key, size, shmflg = gpr[7], gpr[6], gpr[2]
        if size == 0:
            return -EINVAL
        if key != IPC_PRIVATE:
            for segment in self.shm_segments.values():
                if segment.key == key:
                    if size > segment.size:
                        return -EINVAL
                    return segment.shmid
            if not shmflg & IPC_CREAT:
                return -ENOENT
        shmid = self._next_shmid
        self._next_shmid += 1
        self.shm_segments[shmid] = ShmSegment(
            shmid=shmid, key=key, size=size,
            data=bytearray(size))
        return shmid

    def _sys_shmat(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        shmid, shmaddr, shmflg = gpr[7], gpr[6], gpr[2]
        segment = self.shm_segments.get(shmid)
        if segment is None:
            return -EINVAL
        if segment.attached_at is not None:
            # One attach at a time: the copy-in/copy-out model has no
            # coherent answer for two live attachments of one segment.
            return -EINVAL
        length = page_align_up(segment.size)
        if shmaddr:
            if shmaddr & PAGE_MASK:
                return -EINVAL
            base = shmaddr
            if self.machine.mem.any_mapped(base, length):
                if not shmflg & SHM_REMAP:
                    return -EINVAL
                self.machine.mem.unmap(base, length)
        else:
            base = self.machine.mem.find_free_range(length)
        self.machine.mem.map(base, length, PROT_RW)
        if segment.size:
            self._write_user(base, bytes(segment.data))
        segment.attached_at = base
        segment.attached_len = length
        return base

    def _sys_shmdt(self, thread: "Thread") -> int:
        shmaddr = thread.regs.gpr[7]
        for segment in self.shm_segments.values():
            if segment.attached_at == shmaddr:
                segment.data[:] = self.machine.mem.read(shmaddr,
                                                        segment.size)
                self.machine.mem.unmap(shmaddr, segment.attached_len)
                segment.attached_at = None
                segment.attached_len = 0
                return 0
        return -EINVAL

    def _sys_shmctl(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        shmid, cmd = gpr[7], gpr[6]
        segment = self.shm_segments.get(shmid)
        if segment is None:
            return -EINVAL
        if cmd == IPC_RMID:
            if segment.attached_at is not None:
                return -EINVAL
            del self.shm_segments[shmid]
            return 0
        return -EINVAL

    # -- PMU pseudo-calls ----------------------------------------------------------

    def _sys_perf_event_open(self, thread: "Thread") -> int:
        """Arm the calling thread's retired-instruction counter.

        rdi: event (must be PERF_COUNT_INSTRUCTIONS), rsi: threshold,
        rdx: overflow-handler address (0 = terminate thread at threshold).
        """
        gpr = thread.regs.gpr
        event, threshold, handler = gpr[7], gpr[6], gpr[2]
        if event != PERF_COUNT_INSTRUCTIONS:
            return -EINVAL
        if threshold == 0:
            return -EINVAL
        # +1: the arming syscall instruction itself retires after this
        # handler returns; the threshold counts instructions *after* it.
        thread.pmu_trap_at = thread.icount + 1 + threshold
        thread.pmu_handler = handler if handler else None
        return 0

    def _sys_perf_read(self, thread: "Thread") -> int:
        event = thread.regs.gpr[7]
        if event == PERF_COUNT_INSTRUCTIONS:
            return thread.icount
        if event == PERF_COUNT_CYCLES:
            return thread.cycles
        if event == PERF_COUNT_LLC_MISSES:
            return thread.llc_misses
        if event == PERF_COUNT_BRANCHES:
            return thread.branches
        return -EINVAL
