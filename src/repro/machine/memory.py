"""Paged virtual address space with permissions and page faults.

Pages are 4 KiB, like Linux on x86-64.  Unmapped or permission-violating
accesses raise :class:`PageFault`, which the kernel turns into a SIGSEGV
process exit — this is the mechanism behind the paper's "graceful exit
challenge": an ELFie that diverges off its captured pages dies here.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

PAGE_SIZE = 4096
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1

# Linux mprotect/mmap protection bits.
PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4
PROT_RW = PROT_READ | PROT_WRITE
PROT_RX = PROT_READ | PROT_EXEC
PROT_RWX = PROT_READ | PROT_WRITE | PROT_EXEC

_ACCESS_NAME = {PROT_READ: "read", PROT_WRITE: "write", PROT_EXEC: "execute"}


def page_align_down(addr: int) -> int:
    """Round *addr* down to a page boundary."""
    return addr & ~PAGE_MASK


def page_align_up(addr: int) -> int:
    """Round *addr* up to a page boundary."""
    return (addr + PAGE_MASK) & ~PAGE_MASK


class PageFault(Exception):
    """An access to unmapped memory or one violating page permissions."""

    def __init__(self, address: int, access: int, mapped: bool) -> None:
        self.address = address
        self.access = access
        self.mapped = mapped
        kind = "protection violation" if mapped else "unmapped page"
        super().__init__(
            "page fault: %s at 0x%x (%s)"
            % (_ACCESS_NAME.get(access, "access"), address, kind)
        )


class MapError(Exception):
    """Raised on invalid map/unmap/protect requests."""


class AddressSpace:
    """A sparse, paged 64-bit address space.

    ``touch_hook``, when set, is called as ``touch_hook(page_index,
    is_write)`` on the first-level access path; the PinPlay logger uses it
    to discover which pages a region touches.

    ``exec_invalidate_hook``, when set, is called as ``hook(page_index)``
    whenever an *executable* page's contents or mapping may have changed:
    a data write landing on an executable page (self-modifying code), or
    ``map``/``unmap``/``protect`` touching a page that was executable.
    The CPU uses it to drop cached decodes and translated blocks at page
    granularity instead of clearing everything.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._perms: Dict[int, int] = {}
        self._exec_pages: Set[int] = set()
        self.touch_hook: Optional[Callable[[int, bool], None]] = None
        self.exec_invalidate_hook: Optional[Callable[[int], None]] = None

    def _retire_exec_page(self, page: int) -> None:
        """Notify the CPU that an executable page is being changed."""
        hook = self.exec_invalidate_hook
        if hook is not None:
            hook(page)

    # -- mapping ----------------------------------------------------------

    def map(self, addr: int, length: int, prot: int,
            data: Optional[bytes] = None, fixed: bool = True) -> int:
        """Map ``[addr, addr+length)`` with protection *prot*.

        The range is page-aligned outward.  Existing pages in the range
        are replaced (MAP_FIXED semantics).  If *data* is given it is
        copied to the start of the mapping.  Returns the mapped base.
        """
        if length <= 0:
            raise MapError("cannot map %d bytes" % length)
        start = page_align_down(addr)
        end = page_align_up(addr + length)
        if not fixed and self.any_mapped(start, end - start):
            raise MapError("mapping overlaps existing pages at 0x%x" % start)
        exec_pages = self._exec_pages
        for page in range(start >> PAGE_SHIFT, end >> PAGE_SHIFT):
            if page in exec_pages:
                self._retire_exec_page(page)
            self._pages[page] = bytearray(PAGE_SIZE)
            self._perms[page] = prot
            if prot & PROT_EXEC:
                exec_pages.add(page)
            else:
                exec_pages.discard(page)
        if data is not None:
            if addr + len(data) > end:
                raise MapError("data larger than mapping")
            self._write_raw(addr, data)
        return start

    def unmap(self, addr: int, length: int) -> None:
        """Remove any pages overlapping ``[addr, addr+length)``."""
        if length <= 0:
            raise MapError("cannot unmap %d bytes" % length)
        start = page_align_down(addr) >> PAGE_SHIFT
        end = page_align_up(addr + length) >> PAGE_SHIFT
        exec_pages = self._exec_pages
        for page in range(start, end):
            if page in exec_pages:
                self._retire_exec_page(page)
                exec_pages.discard(page)
            self._pages.pop(page, None)
            self._perms.pop(page, None)

    def protect(self, addr: int, length: int, prot: int) -> None:
        """Change protection of mapped pages in the range; faults if any
        page in the range is unmapped (like mprotect returning ENOMEM)."""
        start = page_align_down(addr) >> PAGE_SHIFT
        end = page_align_up(addr + length) >> PAGE_SHIFT
        for page in range(start, end):
            if page not in self._perms:
                raise MapError("mprotect on unmapped page 0x%x" % (page << PAGE_SHIFT))
        exec_pages = self._exec_pages
        for page in range(start, end):
            if page in exec_pages:
                self._retire_exec_page(page)
            self._perms[page] = prot
            if prot & PROT_EXEC:
                exec_pages.add(page)
            else:
                exec_pages.discard(page)

    def protect_mapped(self, addr: int, length: int, prot: int) -> bool:
        """Like :meth:`protect`, but returns False instead of raising
        when any page in the range is unmapped (mprotect's ENOMEM case,
        distinct from caller-side EINVAL argument errors)."""
        start = page_align_down(addr) >> PAGE_SHIFT
        end = page_align_up(addr + length) >> PAGE_SHIFT
        if any(page not in self._perms for page in range(start, end)):
            return False
        self.protect(addr, length, prot)
        return True

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    def any_mapped(self, addr: int, length: int) -> bool:
        start = page_align_down(addr) >> PAGE_SHIFT
        end = page_align_up(addr + length) >> PAGE_SHIFT
        return any(page in self._pages for page in range(start, end))

    def page_prot(self, addr: int) -> int:
        """Protection bits of the page containing *addr* (0 if unmapped)."""
        return self._perms.get(addr >> PAGE_SHIFT, PROT_NONE)

    # -- access -----------------------------------------------------------

    def _check(self, page: int, access: int, addr: int) -> bytearray:
        data = self._pages.get(page)
        if data is None:
            raise PageFault(addr, access, mapped=False)
        if not self._perms[page] & access:
            raise PageFault(addr, access, mapped=True)
        return data

    def read(self, addr: int, n: int, access: int = PROT_READ) -> bytes:
        """Read *n* bytes with the given access requirement."""
        page = addr >> PAGE_SHIFT
        offset = addr & PAGE_MASK
        hook = self.touch_hook
        if offset + n <= PAGE_SIZE:
            data = self._check(page, access, addr)
            if hook is not None:
                hook(page, False)
            return bytes(data[offset : offset + n])
        # slow path: page-crossing read
        out = bytearray()
        remaining = n
        current = addr
        while remaining:
            page = current >> PAGE_SHIFT
            offset = current & PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            data = self._check(page, access, current)
            if hook is not None:
                hook(page, False)
            out += data[offset : offset + chunk]
            current += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes, access: int = PROT_WRITE) -> None:
        """Write *data* with the given access requirement."""
        n = len(data)
        page = addr >> PAGE_SHIFT
        offset = addr & PAGE_MASK
        hook = self.touch_hook
        if offset + n <= PAGE_SIZE:
            target = self._check(page, access, addr)
            if hook is not None:
                hook(page, True)
            target[offset : offset + n] = data
            if page in self._exec_pages:
                self._retire_exec_page(page)
            return
        pos = 0
        current = addr
        while pos < n:
            page = current >> PAGE_SHIFT
            offset = current & PAGE_MASK
            chunk = min(PAGE_SIZE - offset, n - pos)
            target = self._check(page, access, current)
            if hook is not None:
                hook(page, True)
            target[offset : offset + chunk] = data[pos : pos + chunk]
            if page in self._exec_pages:
                self._retire_exec_page(page)
            current += chunk
            pos += chunk

    def _write_raw(self, addr: int, data: bytes) -> None:
        """Write ignoring permissions (used when populating mappings)."""
        pos = 0
        n = len(data)
        current = addr
        while pos < n:
            page = current >> PAGE_SHIFT
            offset = current & PAGE_MASK
            chunk = min(PAGE_SIZE - offset, n - pos)
            target = self._pages.get(page)
            if target is None:
                raise PageFault(current, PROT_WRITE, mapped=False)
            target[offset : offset + chunk] = data[pos : pos + chunk]
            current += chunk
            pos += chunk

    def fetch(self, addr: int, n: int = 16) -> bytes:
        """Fetch up to *n* instruction bytes starting at *addr*.

        Requires execute permission on the first page; stops early at an
        unmapped or non-executable page boundary (the decoder will raise
        on truncation, and the fault surfaces on the retry read).
        """
        page = addr >> PAGE_SHIFT
        offset = addr & PAGE_MASK
        data = self._check(page, PROT_EXEC, addr)
        chunk = data[offset : offset + n]
        if len(chunk) >= n:
            return bytes(chunk)
        next_page = self._pages.get(page + 1)
        if next_page is not None and self._perms[page + 1] & PROT_EXEC:
            chunk = bytes(chunk) + bytes(next_page[: n - len(chunk)])
        return bytes(chunk)

    # -- convenience accessors ---------------------------------------------

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, bytes([value & 0xFF]))

    def read_cstring(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string of at most *limit* bytes."""
        out = bytearray()
        while len(out) < limit:
            byte = self.read(addr + len(out), 1)
            if byte == b"\x00":
                return bytes(out)
            out += byte
        return bytes(out)

    # -- inspection ---------------------------------------------------------

    def mapped_pages(self) -> List[int]:
        """Sorted list of mapped page indices."""
        return sorted(self._pages)

    def page_bytes(self, page: int) -> bytes:
        """Copy of one page's contents."""
        return bytes(self._pages[page])

    def snapshot(self) -> Dict[int, bytes]:
        """Copy of all mapped pages: page index -> contents."""
        return {page: bytes(data) for page, data in self._pages.items()}

    def snapshot_perms(self) -> Dict[int, int]:
        """Copy of page protections: page index -> prot bits."""
        return dict(self._perms)

    def mapped_ranges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield maximal (start_addr, end_addr, prot) runs of mapped pages."""
        pages = self.mapped_pages()
        if not pages:
            return
        run_start = pages[0]
        prev = pages[0]
        prot = self._perms[pages[0]]
        for page in pages[1:]:
            if page == prev + 1 and self._perms[page] == prot:
                prev = page
                continue
            yield run_start << PAGE_SHIFT, (prev + 1) << PAGE_SHIFT, prot
            run_start = page
            prev = page
            prot = self._perms[page]
        yield run_start << PAGE_SHIFT, (prev + 1) << PAGE_SHIFT, prot

    def total_mapped_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def find_free_range(self, length: int, start_hint: int = 0x7F0000000000) -> int:
        """Find an unmapped, page-aligned range of *length* bytes.

        Scans downward from *start_hint*, which mimics Linux's mmap
        top-down allocation policy.
        """
        pages_needed = page_align_up(length) >> PAGE_SHIFT
        candidate = page_align_down(start_hint) >> PAGE_SHIFT
        while candidate > pages_needed:
            if all(candidate + i not in self._pages for i in range(pages_needed)):
                return candidate << PAGE_SHIFT
            candidate -= pages_needed
        raise MapError("address space exhausted")
