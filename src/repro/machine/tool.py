"""Pin-style dynamic-instrumentation interface.

A :class:`Tool` attached to a :class:`~repro.machine.machine.Machine`
receives callbacks as the program executes — the analog of writing a
Pintool.  The PinPlay logger, the BBV profiler used by SimPoint, and the
Sniper front-end are all implemented as tools.

Attaching any tool moves the machine onto its instrumented execution
path, which is measurably slower than the bare path; that cost is the
reproduction's analog of Pin's dynamic-instrumentation overhead
(Table I's ~15x/~40x rows are measured, not asserted).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.isa.instructions import Instruction
    from repro.machine.machine import Machine, Thread


class Tool:
    """Base class for instrumentation tools.

    Subclasses override only the hooks they need.  All hooks default to
    no-ops; the machine checks ``wants_*`` class attributes to skip
    invoking unused hook categories on the hot path.
    """

    #: Set false in subclasses that do not need per-instruction callbacks.
    wants_instructions: bool = True
    #: Set true to receive memory-operand callbacks.
    wants_memory: bool = False
    #: Set true to receive basic-block callbacks.
    wants_blocks: bool = False

    def on_attach(self, machine: "Machine") -> None:
        """Called when the tool is attached to a machine."""

    def on_thread_start(self, machine: "Machine", thread: "Thread") -> None:
        """A thread became runnable (includes the initial thread)."""

    def on_thread_exit(self, machine: "Machine", thread: "Thread") -> None:
        """A thread exited."""

    def on_instruction(self, machine: "Machine", thread: "Thread",
                       pc: int, insn: "Instruction") -> None:
        """Called before each instruction executes."""

    def on_basic_block(self, machine: "Machine", thread: "Thread",
                       pc: int) -> None:
        """Called at each basic-block entry (after any taken branch and
        at thread start)."""

    def on_memory_read(self, machine: "Machine", thread: "Thread",
                       address: int, size: int) -> None:
        """Called before a data-memory read."""

    def on_memory_write(self, machine: "Machine", thread: "Thread",
                        address: int, size: int) -> None:
        """Called before a data-memory write."""

    def on_syscall_before(self, machine: "Machine", thread: "Thread",
                          number: int) -> Optional[bool]:
        """Called before a syscall executes.

        Returning True suppresses the actual syscall (the tool is
        expected to have injected results itself) — this is how the
        PinPlay replayer skips and injects system calls.
        """
        return None

    def on_syscall_after(self, machine: "Machine", thread: "Thread",
                         number: int, result: int) -> None:
        """Called after a (non-suppressed) syscall executes."""

    def on_region_limit(self, machine: "Machine", thread: "Thread") -> None:
        """A thread retired exactly ``thread.icount_limit`` instructions.

        Fires at the precise retire boundary on both dispatch paths
        (the fast path spills mid-block, mirroring PMU-trap slicing).
        The hook may raise/clear the limit, block the thread, or request
        a stop; doing none of those stops the machine.
        """
