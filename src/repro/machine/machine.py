"""The :class:`Machine` facade: CPU + memory + kernel + scheduler + tools.

A Machine is one simulated computer running one process.  The paper's
workflows map onto it directly:

- a *native run* is ``Machine.run()`` with no tools attached,
- a *Pin run* attaches :class:`~repro.machine.tool.Tool` instances
  (logger, BBV profiler, simulator front-end),
- *constrained replay* drives the scheduler from a recorded slice log,
- an *ELFie run* loads an ELFie with the ELF loader and free-runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.registers import RegisterFile
from repro.machine.cpu import Cpu, CpuFault, NO_TRAP
from repro.machine.kernel import Kernel
from repro.machine.memory import AddressSpace, PageFault
from repro.machine.perf import PMU
from repro.machine.scheduler import Scheduler
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.observe import hooks

SIGSEGV = 11


@dataclass(slots=True)
class Thread:
    """One hardware thread: architectural state plus counters."""

    tid: int
    regs: RegisterFile = field(default_factory=RegisterFile)
    alive: bool = True
    blocked: bool = False
    futex_addr: Optional[int] = None
    #: Channel id this thread is blocked on (pipe/socket read, write, or
    #: accept); the interrupted syscall's rip is rewound so a wake-up
    #: re-executes it (syscall-restart semantics).
    wait_channel: Optional[int] = None
    #: Blocked-signal bitmask (bit N-1 = signal N), rt_sigprocmask(2).
    sigmask: int = 0
    #: Thread-directed pending signals (tkill/tgkill).
    pending: int = 0
    exit_code: int = 0
    #: Retired-instruction count (the canonical PMU instructions counter).
    icount: int = 0
    #: Cycles accrued by the hardware timing model.
    cycles: int = 0
    llc_misses: int = 0
    branches: int = 0
    spin_pauses: int = 0
    #: Absolute icount at which a PMU overflow trap fires (NO_TRAP = off).
    pmu_trap_at: int = NO_TRAP
    pmu_handler: Optional[int] = None
    #: Absolute icount at which execution must stop *exactly* (NO_TRAP =
    #: off).  Unlike the PMU trap this does not redirect control flow:
    #: the CPU spills mid-block and calls ``Machine.on_icount_limit`` so
    #: a tool (e.g. the replayer's region-budget accounting) can react at
    #: the precise retire boundary.
    icount_limit: int = NO_TRAP
    #: True when the next instruction begins a basic block.
    new_block: bool = True

    @property
    def runnable(self) -> bool:
        return self.alive and not self.blocked


@dataclass
class ExitStatus:
    """How a run ended."""

    kind: str                 # "exit" | "signal" | "stopped"
    code: int = 0             # process exit code (kind == "exit")
    signal: int = 0           # delivering signal (kind == "signal")
    detail: str = ""          # human-readable cause
    fault_address: Optional[int] = None

    @property
    def graceful(self) -> bool:
        """True for a normal exit — the paper's "graceful exit"."""
        return self.kind == "exit"


class Machine:
    """A simulated computer executing one PX process."""

    def __init__(self, seed: int = 0, fs: Optional[FileSystem] = None,
                 root: str = "/", base_quantum: int = 64) -> None:
        self.mem = AddressSpace()
        self.cpu = Cpu(self)
        self.kernel = Kernel(self, fs=fs, root=root)
        self.scheduler = Scheduler(seed=seed, base_quantum=base_quantum)
        self.pmu = PMU(self)
        self.threads: Dict[int, Thread] = {}
        self._next_tid = 0
        self.exit_status: Optional[ExitStatus] = None
        self.tools: List[Tool] = []
        self.instr_tools: List[Tool] = []
        self.block_tools: List[Tool] = []
        self._syscall_tools: List[Tool] = []
        #: Global retired-instruction counter across all threads.
        self.executed_total = 0

    # -- setup ------------------------------------------------------------

    def create_thread(self, parent: Optional[Thread] = None,
                      regs: Optional[RegisterFile] = None,
                      tid: Optional[int] = None) -> Thread:
        """Create a new thread (the clone(2) backend).

        An explicit *tid* (used when reconstructing pinball state) must
        be unused; the sequential counter skips past it.
        """
        if tid is None:
            tid = self._next_tid
        elif tid in self.threads:
            raise ValueError("thread id %d already exists" % tid)
        self._next_tid = max(self._next_tid, tid + 1)
        if regs is not None:
            initial = regs.copy()
        elif parent is not None:
            initial = parent.regs.copy()
        else:
            initial = RegisterFile()
        thread = Thread(tid=tid, regs=initial)
        self.threads[tid] = thread
        for tool in self.tools:
            tool.on_thread_start(self, thread)
        return thread

    def attach(self, tool: Tool) -> None:
        """Attach an instrumentation tool (Pin-style)."""
        self.tools.append(tool)
        self._rebuild_tool_lists()
        tool.on_attach(self)

    def detach(self, tool: Tool) -> None:
        """Detach a previously attached tool."""
        self.tools.remove(tool)
        self._rebuild_tool_lists()

    def _rebuild_tool_lists(self) -> None:
        self.instr_tools = [t for t in self.tools if t.wants_instructions]
        self.block_tools = [t for t in self.tools if t.wants_blocks]
        self._syscall_tools = list(self.tools)
        # Instruction tools need exact per-instruction callbacks; block,
        # memory, and syscall tools all fire on the superblock fast path.
        # Block tools additionally suppress superblock chaining (every
        # block entry must pass the dispatch header that fires their
        # hooks) and memory tools suppress the compiled tier (generated
        # code calls mem.read/write directly, bypassing the cpu-level
        # read/write hooks) — both of those conjunctions live in
        # Cpu._run_fast, re-evaluated per quantum.
        self.cpu.fast_dispatch = (not self.instr_tools
                                  and self.cpu.dispatch_tier != "slow")
        mem_tools = [t for t in self.tools if t.wants_memory]
        if mem_tools:
            def read_hook(thread: Thread, addr: int, size: int) -> None:
                for tool in mem_tools:
                    tool.on_memory_read(self, thread, addr, size)

            def write_hook(thread: Thread, addr: int, size: int) -> None:
                for tool in mem_tools:
                    tool.on_memory_write(self, thread, addr, size)

            self.cpu.read_hook = read_hook
            self.cpu.write_hook = write_hook
        else:
            self.cpu.read_hook = None
            self.cpu.write_hook = None

    # -- lifecycle ----------------------------------------------------------

    def on_thread_exited(self, thread: Thread) -> None:
        """Bookkeeping when a thread dies (exit(2) or PMU terminate)."""
        for tool in self.tools:
            tool.on_thread_exit(self, thread)
        if all(not t.alive for t in self.threads.values()):
            if self.exit_status is None:
                self.exit_status = ExitStatus(
                    kind="exit", code=thread.exit_code,
                    detail="last thread exited",
                )

    def exit_process(self, code: int) -> None:
        """exit_group(2): terminate every thread."""
        for thread in self.threads.values():
            if thread.alive:
                thread.alive = False
                thread.exit_code = code
        self.exit_status = ExitStatus(kind="exit", code=code,
                                      detail="exit_group")

    def deliver_fault(self, thread: Thread, signal: int, detail: str,
                      fault_address: Optional[int] = None) -> None:
        """Kill the process with a signal (SIGSEGV/SIGFPE/SIGILL)."""
        obs = hooks.OBS
        if obs.enabled:
            obs.count("machine.faults")
            obs.instant("machine.fault", "machine", tid=thread.tid,
                        signal=signal, detail=detail)
        for t in self.threads.values():
            t.alive = False
        self.exit_status = ExitStatus(
            kind="signal", signal=signal, detail=detail,
            fault_address=fault_address,
        )

    def request_stop(self, reason: str) -> None:
        """Ask the run loop to stop as soon as possible (tool API)."""
        self.cpu.stop_flag = reason

    def on_icount_limit(self, thread: Thread) -> None:
        """A thread reached its ``icount_limit`` exactly.

        Dispatches the tool hook; if no tool raises the limit, blocks
        the thread, or requests a stop, the machine stops itself so the
        CPU loop cannot livelock re-reporting the same boundary.
        """
        for tool in self.tools:
            tool.on_region_limit(self, thread)
        if (thread.runnable and thread.icount >= thread.icount_limit
                and self.cpu.stop_flag is None):
            self.request_stop(
                "icount limit reached (tid %d)" % thread.tid)

    # -- syscall plumbing -----------------------------------------------------

    def do_syscall(self, thread: Thread) -> None:
        """Run one syscall through tool interception and the kernel."""
        number = thread.regs.gpr[0]
        suppressed = False
        for tool in self._syscall_tools:
            if tool.on_syscall_before(self, thread, number):
                suppressed = True
        if suppressed:
            return
        result = self.kernel.dispatch(thread)
        for tool in self._syscall_tools:
            tool.on_syscall_after(self, thread, number, result)

    # -- queries -----------------------------------------------------------

    def total_icount(self) -> int:
        return sum(t.icount for t in self.threads.values())

    def total_cycles(self) -> int:
        return sum(t.cycles for t in self.threads.values())

    def max_thread_cycles(self) -> int:
        """Wall-clock proxy: the longest-running thread's cycles."""
        if not self.threads:
            return 0
        return max(t.cycles for t in self.threads.values())

    def runnable_tids(self) -> List[int]:
        # Inlined `t.runnable` — this runs once per scheduler pick.
        return [t.tid for t in self.threads.values()
                if t.alive and not t.blocked]

    @property
    def running(self) -> bool:
        return self.exit_status is None and any(
            t.runnable for t in self.threads.values()
        )

    def stdout(self) -> bytes:
        return bytes(self.kernel.fdt.stdout)

    def stderr(self) -> bytes:
        return bytes(self.kernel.fdt.stderr)

    # -- run loop ------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> ExitStatus:
        """Run until process exit, a fault, a stop request, or the
        instruction budget is exhausted.

        Returns the final :class:`ExitStatus`; a budget stop or tool stop
        yields ``kind == "stopped"``.
        """
        self.cpu.stop_flag = None
        self.cpu.yield_flag = False
        while self.exit_status is None:
            if not self.scheduler.mid_slice:
                # Quantum-boundary signal delivery.  Skipped while a cut
                # slice's remainder is parked: a budget-stepped run must
                # deliver at the same boundaries as a straight run.
                self.kernel.deliver_pending_signals()
                if self.exit_status is not None:
                    break
            runnable = self.runnable_tids()
            if not runnable:
                if any(t.blocked for t in self.threads.values()):
                    self.deliver_fault(
                        next(iter(self.threads.values())), SIGSEGV,
                        "deadlock: all threads blocked (futex/channel waits)",
                    )
                break
            if max_instructions is not None:
                # Check the budget before picking: a pick consumes a
                # replay-log slice (or free-run RNG state), which a
                # stepped run re-entering with an exhausted budget must
                # not burn.
                remaining = max_instructions - self.executed_total
                if remaining <= 0:
                    return self._stopped("instruction budget exhausted")
            slice_ = self.scheduler.pick(runnable)
            quantum = slice_.quantum
            if max_instructions is not None:
                quantum = min(quantum, remaining)
            thread = self.threads[slice_.tid]
            try:
                executed = self.cpu.run_thread(thread, quantum)
            except PageFault as exc:
                self.deliver_fault(thread, SIGSEGV, str(exc),
                                   fault_address=exc.address)
                break
            except CpuFault as exc:
                self.deliver_fault(thread, exc.signal, str(exc))
                break
            self.executed_total += executed
            yielded = self.cpu.yield_flag
            self.cpu.yield_flag = False
            if executed != slice_.quantum:
                # A signal-raising syscall forfeits the slice remainder
                # (not resumable): the shortened slice is recorded, so
                # replay reaches the delivery boundary at the same spot.
                self.scheduler.note_partial(
                    slice_, executed,
                    resumable=thread.runnable and not yielded)
            if self.cpu.stop_flag is not None:
                return self._stopped(self.cpu.stop_flag)
            if (max_instructions is not None
                    and self.executed_total >= max_instructions
                    and self.exit_status is None):
                return self._stopped("instruction budget exhausted")
        if self.exit_status is None:
            self.exit_status = ExitStatus(kind="exit", code=0,
                                          detail="no runnable threads")
        return self.exit_status

    def _stopped(self, reason: str) -> ExitStatus:
        status = ExitStatus(kind="stopped", detail=reason)
        # A stop is resumable: exit_status stays None so run() can continue.
        self.cpu.stop_flag = None
        return status
