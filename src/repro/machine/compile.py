"""Threaded-code compilation of hot superblocks.

Once a block's hit count crosses ``COMPILE_THRESHOLD`` the fast path
hands it here and gets back one generated Python function that executes
the whole block per call: operands are specialized into literals, the
per-instruction static costs are folded into a single ``cycles += K``
per exit, and the icount/RIP updates are hoisted out of the body to the
exits.  What remains per instruction is the architectural work itself —
no handler call, no operand tuple unpacking, no per-step bookkeeping.

Bit-identity with the per-instruction interpreter is the contract, so
the generated code keeps every observable ordering of the slow path:

* Dynamic cache-model charges still happen access by access (before the
  memory operation, which may fault), accumulated into a local delta
  that every exit — normal, SMC, fault — flushes into ``thread.cycles``.
* A mid-block fault materializes the exact architectural state of the
  slow path before re-raising: RIP already advanced past the faulting
  instruction, icount/cycles covering only the retired prefix.  A
  ``_f = <step index>`` assignment before each fault-capable operation
  plus a per-step metadata table make the except-path exact.
* Every store is followed by an SMC check: if it invalidated code, the
  function materializes state at that step boundary and returns the
  retired count, exactly where the interpreted trace would have broken.
* RFLAGS writes are emitted only when a later instruction can observe
  them (conditional branch, PUSHF, CMPXCHG's partial update) or when a
  fault-capable instruction could expose them mid-block; flag writes
  that are provably overwritten before any such observation point are
  elided (dead-flag elimination).

Compiled functions are cached by block *shape* — opcodes, operands, and
intra-block RIP offsets — with all RIP values computed relative to a
``base`` argument, so the same function is reused for identical code at
different addresses (common across re-JITted or remapped pages).

Codegen bails out (returns ``None``) on any unsupported handler —
SYSCALL, RDTSC (reads mid-block cycles), XSAVE/XRSTOR — and the fast
path permanently falls back to the interpreted trace for that block.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Op
from repro.isa.registers import Flags
from repro.machine.memory import (
    PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, PROT_READ, PROT_WRITE,
)

#: Entry cap for the shape-keyed function cache (see Cpu eviction docs).
COMPILED_CACHE_LIMIT = 2048

_MASK = "18446744073709551615"        # (1 << 64) - 1
_SIGN = "9223372036854775808"         # 1 << 63
_TWO64 = "18446744073709551616"       # 1 << 64


class _Unsupported(Exception):
    """Raised by an emitter for a shape codegen cannot handle."""


# Opcode groups driving the dead-flag pass.  Full writers set all four
# flags and may be elided; readers (and every fault-capable op, whose
# fault path exposes current flags to the outside) keep earlier writers
# live.  CMPXCHG writes only ZF, so it both reads and writes.
_ALU_RR = {
    int(Op.ADD_RR): ("({a} + {b})", True),
    int(Op.SUB_RR): ("({a} - {b})", True),
    int(Op.IMUL_RR): ("({a} * {b})", True),
    int(Op.AND_RR): ("{a} & {b}", False),
    int(Op.OR_RR): ("{a} | {b}", False),
    int(Op.XOR_RR): ("{a} ^ {b}", False),
    int(Op.SHL_RR): ("({a} << ({b} & 63))", True),
    int(Op.SHR_RR): ("{a} >> ({b} & 63)", False),
}
_ALU_RI = {
    int(Op.ADD_RI): lambda a, imm: "(%s + %d) & %s" % (a, imm, _MASK),
    int(Op.SUB_RI): lambda a, imm: "(%s - %d) & %s" % (a, imm, _MASK),
    int(Op.IMUL_RI): lambda a, imm: "(%s * %d) & %s" % (a, imm, _MASK),
    int(Op.AND_RI): lambda a, imm: "%s & %d" % (a, imm),
    int(Op.OR_RI): lambda a, imm: "(%s | %d) & %s" % (a, imm, _MASK),
    int(Op.XOR_RI): lambda a, imm: "(%s ^ %d) & %s" % (a, imm, _MASK),
    int(Op.SHL_RI): lambda a, imm: "(%s << %d) & %s" % (a, imm & 63, _MASK),
    int(Op.SHR_RI): lambda a, imm: "%s >> %d" % (a, imm & 63),
}
_FARITH = {
    int(Op.FADD): "+", int(Op.FSUB): "-",
    int(Op.FMUL): "*", int(Op.FDIV): "/",
}
_COND = {
    int(Op.JZ): "flags.zf",
    int(Op.JNZ): "not flags.zf",
    int(Op.JL): "flags.sf != flags.of",
    int(Op.JGE): "flags.sf == flags.of",
    int(Op.JG): "not flags.zf and flags.sf == flags.of",
    int(Op.JLE): "flags.zf or flags.sf != flags.of",
    int(Op.JB): "flags.cf",
    int(Op.JAE): "not flags.cf",
}

_FULL_FLAG_WRITERS = (
    set(_ALU_RR) | set(_ALU_RI)
    | {int(Op.DIV_RR), int(Op.MOD_RR), int(Op.CMP_RR), int(Op.CMP_RI),
       int(Op.TEST_RR), int(Op.FCMP), int(Op.XADD)}
)
_FLAG_READERS = set(_COND) | {int(Op.PUSHF), int(Op.CMPXCHG)}
_FAULTABLE = {
    int(Op.LD), int(Op.ST), int(Op.LD4), int(Op.ST4), int(Op.LD1),
    int(Op.ST1), int(Op.FLD), int(Op.FST), int(Op.PUSH), int(Op.POP),
    int(Op.PUSHF), int(Op.POPF), int(Op.CALL), int(Op.CALL_R),
    int(Op.RET), int(Op.XADD), int(Op.CMPXCHG), int(Op.XCHG),
    int(Op.DIV_RR), int(Op.MOD_RR), int(Op.HLT),
}
_UNSUPPORTED = {
    int(Op.SYSCALL), int(Op.RDTSC), int(Op.XSAVE), int(Op.XRSTOR),
}


def _dead_flags(ops: Tuple[int, ...]) -> List[bool]:
    """Backward liveness: True where a full flag write may be elided."""
    skip = [False] * len(ops)
    live = True  # flags are architectural state at every block exit
    for i in range(len(ops) - 1, -1, -1):
        op = ops[i]
        if op in _FULL_FLAG_WRITERS:
            if live:
                live = False
            else:
                skip[i] = True
        if op in _FLAG_READERS or op in _FAULTABLE:
            live = True
    return skip


class _Gen:
    """Accumulates generated source plus the hoist set it needs.

    In loop mode (``loop_n`` nonzero) the body sits one level deeper
    inside a ``while True`` spin and every exit scales the hoisted
    icount/cycles flush by ``_it`` completed iterations.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.needs: set = set()
        self.rip_written = False
        self.extra = 0          # indent shift for loop-mode bodies
        self.loop_n = 0         # instructions per iteration (0 = no loop)
        self.loop_total = 0     # static cycle cost per iteration

    def emit(self, line: str, indent: int = 2) -> None:
        self.lines.append("    " * (indent + self.extra) + line)

    def charge(self, indent: int = 2) -> None:
        """Cache-model charge for the address in ``_a``."""
        # Penalties/set counts are baked from the cpu module's model so
        # the generated code and the interpreter can never disagree.
        from repro.machine.cpu import (
            HW_L1_PENALTY, HW_L1_SETS, HW_LLC_PENALTY, HW_LLC_SETS,
        )

        self.needs.update(("_l1", "_llc"))
        e = self.emit
        e("_ln = _a >> 6", indent)
        e("_ix = _ln & %d" % (HW_L1_SETS - 1), indent)
        e("if _l1[_ix] != _ln:", indent)
        e("_l1[_ix] = _ln", indent + 1)
        e("_ix = _ln & %d" % (HW_LLC_SETS - 1), indent + 1)
        e("if _llc[_ix] != _ln:", indent + 1)
        e("_llc[_ix] = _ln", indent + 2)
        e("_cyd += %d" % (HW_L1_PENALTY + HW_LLC_PENALTY), indent + 2)
        e("thread.llc_misses += 1", indent + 2)
        e("else:", indent + 1)
        e("_cyd += %d" % HW_L1_PENALTY, indent + 2)

    def smc_check(self, index: int, off: int, prefix_incl: int,
                  rip_set: bool) -> None:
        """Early SMC exit after a store: materialize and return."""
        e = self.emit
        e("if cpu._smc_dirty:")
        if not rip_set:
            e("regs.rip = (_base + %d) & %s" % (off, _MASK), 3)
        if self.loop_n:
            e("thread.icount += _it * %d + %d"
              % (self.loop_n, index + 1), 3)
            e("thread.cycles += _cyd + _it * %d + %d"
              % (self.loop_total, prefix_incl), 3)
            e("return _it * %d + %d" % (self.loop_n, index + 1), 3)
        else:
            e("thread.icount += %d" % (index + 1), 3)
            e("thread.cycles += _cyd + %d" % prefix_incl, 3)
            e("return %d" % (index + 1), 3)


def _ea_expr(gen: _Gen, mem_op: tuple) -> None:
    base, disp = mem_op
    if disp:
        gen.emit("_a = (gpr[%d] + %d) & %s" % (base, disp, _MASK))
    else:
        gen.emit("_a = gpr[%d]" % base)


def _inline_load(gen: _Gen, size: int, stmt) -> None:
    """Load ``size`` bytes at ``_a``, open-coding the single-page path.

    ``stmt(value_expr)`` renders the consuming statement.  The inline
    path replicates AddressSpace.read's fast path exactly: same-page
    access, permission bits checked, no touch hook attached.  Faults,
    page-crossing accesses, and hooked runs fall back to ``mem.read``,
    which raises the identical PageFault.
    """
    gen.needs.update(("_mr", "_pages", "_perms", "_th"))
    e = gen.emit
    fallback = "_mr(_a, %d)" % size
    if size == 1:
        fallback += "[0]"
    e("_o = _a & %d" % PAGE_MASK)
    e("if _o <= %d and _th is None:" % (PAGE_SIZE - size))
    e("_pg = _a >> %d" % PAGE_SHIFT, 3)
    e("_d = _pages.get(_pg)", 3)
    e("if _d is not None and _perms[_pg] & %d:" % PROT_READ, 3)
    e(stmt("_d[_o]" if size == 1 else "_d[_o:_o + %d]" % size), 4)
    e("else:", 3)
    e(stmt(fallback), 4)
    e("else:", 2)
    e(stmt(fallback), 3)


def _inline_store(gen: _Gen, size: int, value_expr: str) -> None:
    """Store ``value_expr`` at ``_a``, open-coding the single-page path.

    For sizes > 1 the value expression must render bytes; for size 1 an
    int.  Stores to executable pages always take the ``mem.write``
    fallback so the SMC invalidation protocol (retire after the data
    lands) stays in one place.
    """
    gen.needs.update(("_mw", "_pages", "_perms", "_xpg", "_th"))
    e = gen.emit
    e("_b = " + value_expr)
    fallback = "_mw(_a, bytes((_b,)))" if size == 1 else "_mw(_a, _b)"
    e("_o = _a & %d" % PAGE_MASK)
    e("if _o <= %d and _th is None:" % (PAGE_SIZE - size))
    e("_pg = _a >> %d" % PAGE_SHIFT, 3)
    e("_d = _pages.get(_pg)", 3)
    e("if _d is not None and _perms[_pg] & %d and _pg not in _xpg:"
      % PROT_WRITE, 3)
    e("_d[_o] = _b" if size == 1 else "_d[_o:_o + %d] = _b" % size, 4)
    e("else:", 3)
    e(fallback, 4)
    e("else:", 2)
    e(fallback, 3)


def _alu_flags(gen: _Gen) -> None:
    gen.emit("flags.zf = _r == 0")
    gen.emit("flags.sf = _r >= " + _SIGN)
    gen.emit("flags.cf = False")
    gen.emit("flags.of = False")


def _emit_step(gen: _Gen, i: int, op: int, ops: tuple, off: int,
               prefix_incl: int, skip_flags: bool, is_last: bool) -> None:
    e = gen.emit
    needs = gen.needs

    if op in _UNSUPPORTED:
        raise _Unsupported(op)

    if op in (int(Op.NOP), int(Op.MARKER), int(Op.CPUID)):
        return
    if op == int(Op.PAUSE):
        e("thread.spin_pauses += 1")
        return
    if op == int(Op.HLT):
        e("_f = %d" % i)
        e('raise InvalidOpcode("hlt executed in user mode at 0x%%x"'
          ' %% ((_base + %d) & %s))' % (off, _MASK))
        return
    if op == int(Op.MOV_RI):
        e("gpr[%d] = %d" % (ops[0], ops[1] & ((1 << 64) - 1)))
        return
    if op == int(Op.MOV_RR):
        e("gpr[%d] = gpr[%d]" % (ops[0], ops[1]))
        return
    if op == int(Op.LEA):
        base, disp = ops[1]
        if disp:
            e("gpr[%d] = (gpr[%d] + %d) & %s" % (ops[0], base, disp, _MASK))
        else:
            e("gpr[%d] = gpr[%d]" % (ops[0], base))
        return

    if op in _ALU_RR:
        tmpl, mask = _ALU_RR[op]
        expr = tmpl.format(a="gpr[%d]" % ops[0], b="gpr[%d]" % ops[1])
        if mask:
            expr = "%s & %s" % (expr, _MASK)
        if skip_flags:
            e("gpr[%d] = %s" % (ops[0], expr))
        else:
            e("_r = " + expr)
            e("gpr[%d] = _r" % ops[0])
            _alu_flags(gen)
        return
    if op in _ALU_RI:
        expr = _ALU_RI[op]("gpr[%d]" % ops[0], ops[1])
        if skip_flags:
            e("gpr[%d] = %s" % (ops[0], expr))
        else:
            e("_r = " + expr)
            e("gpr[%d] = _r" % ops[0])
            _alu_flags(gen)
        return
    if op in (int(Op.DIV_RR), int(Op.MOD_RR)):
        e("_f = %d" % i)
        e("_y = gpr[%d]" % ops[1])
        e("if _y == 0:")
        e('raise DivideError("divide by zero at 0x%%x"'
          ' %% ((_base + %d) & %s))' % (off, _MASK), 3)
        sym = "//" if op == int(Op.DIV_RR) else "%"
        if skip_flags:
            e("gpr[%d] = gpr[%d] %s _y" % (ops[0], ops[0], sym))
        else:
            e("_r = gpr[%d] %s _y" % (ops[0], sym))
            e("gpr[%d] = _r" % ops[0])
            _alu_flags(gen)
        return

    if op in (int(Op.CMP_RR), int(Op.CMP_RI)):
        if skip_flags:
            return
        e("_x = gpr[%d]" % ops[0])
        if op == int(Op.CMP_RR):
            e("_y = gpr[%d]" % ops[1])
            rhs, rhs_s = "_y", "(_y ^ %s)" % _SIGN
        else:
            imm = ops[1] & ((1 << 64) - 1)
            rhs, rhs_s = str(imm), str(imm ^ (1 << 63))
        e("flags.zf = _x == %s" % rhs)
        e("flags.cf = _x < %s" % rhs)
        e("flags.sf = (_x ^ %s) < %s" % (_SIGN, rhs_s))
        e("flags.of = False")
        return
    if op == int(Op.TEST_RR):
        if skip_flags:
            return
        e("_r = gpr[%d] & gpr[%d]" % (ops[0], ops[1]))
        _alu_flags(gen)
        return

    if op == int(Op.LD):
        needs.add("_fb")
        e("_f = %d" % i)
        _ea_expr(gen, ops[1])
        gen.charge()
        _inline_load(gen, 8,
                     lambda v: 'gpr[%d] = _fb(%s, "little")' % (ops[0], v))
        return
    if op == int(Op.ST):
        e("_f = %d" % i)
        _ea_expr(gen, ops[0])
        gen.charge()
        _inline_store(gen, 8, '(gpr[%d] & %s).to_bytes(8, "little")'
                      % (ops[1], _MASK))
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return
    if op == int(Op.LD4):
        needs.add("_fb")
        e("_f = %d" % i)
        _ea_expr(gen, ops[1])
        gen.charge()
        _inline_load(gen, 4,
                     lambda v: 'gpr[%d] = _fb(%s, "little")' % (ops[0], v))
        return
    if op == int(Op.ST4):
        e("_f = %d" % i)
        _ea_expr(gen, ops[0])
        gen.charge()
        _inline_store(gen, 4, '(gpr[%d] & 4294967295).to_bytes(4, "little")'
                      % ops[1])
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return
    if op == int(Op.LD1):
        e("_f = %d" % i)
        _ea_expr(gen, ops[1])
        gen.charge()
        _inline_load(gen, 1, lambda v: "gpr[%d] = %s" % (ops[0], v))
        return
    if op == int(Op.ST1):
        e("_f = %d" % i)
        _ea_expr(gen, ops[0])
        gen.charge()
        _inline_store(gen, 1, "gpr[%d] & 255" % ops[1])
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return

    if op == int(Op.PUSH) or op == int(Op.PUSHF):
        e("_f = %d" % i)
        if op == int(Op.PUSH):
            e("_v = gpr[%d]" % ops[0])
        else:
            e("_v = flags.to_word()")
        e("_a = (gpr[4] - 8) & %s" % _MASK)
        e("gpr[4] = _a")
        gen.charge()
        _inline_store(gen, 8, '(_v & %s).to_bytes(8, "little")' % _MASK)
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return
    if op == int(Op.POP):
        needs.add("_fb")
        e("_f = %d" % i)
        e("_a = gpr[4]")
        gen.charge()
        _inline_load(gen, 8, lambda v: '_v = _fb(%s, "little")' % v)
        e("gpr[4] = (_a + 8) & %s" % _MASK)
        e("gpr[%d] = _v" % ops[0])
        return
    if op == int(Op.POPF):
        needs.add("_fb")
        e("_f = %d" % i)
        e("_a = gpr[4]")
        gen.charge()
        _inline_load(gen, 8, lambda v: '_v = _fb(%s, "little")' % v)
        e("gpr[4] = (_a + 8) & %s" % _MASK)
        e("regs.flags = flags = Flags.from_word(_v)")
        return

    if op == int(Op.JMP):
        gen.rip_written = True
        e("regs.rip = (_base + %d) & %s" % (off + ops[0], _MASK))
        return
    if op in _COND:
        gen.rip_written = True
        e("regs.rip = ((_base + %d) & %s) if %s else ((_base + %d) & %s)"
          % (off + ops[0], _MASK, _COND[op], off, _MASK))
        return
    if op == int(Op.JMPABS):
        gen.rip_written = True
        e("regs.rip = %d" % (ops[0] & ((1 << 64) - 1)))
        return
    if op == int(Op.JMP_R):
        gen.rip_written = True
        e("regs.rip = gpr[%d]" % ops[0])
        return
    if op in (int(Op.CALL), int(Op.CALL_R)):
        gen.rip_written = True
        e("_f = %d" % i)
        e("_v = (_base + %d) & %s" % (off, _MASK))
        e("_a = (gpr[4] - 8) & %s" % _MASK)
        e("gpr[4] = _a")
        gen.charge()
        _inline_store(gen, 8, '_v.to_bytes(8, "little")')
        if op == int(Op.CALL):
            e("regs.rip = (_base + %d) & %s" % (off + ops[0], _MASK))
        else:
            # Read the target after the push, like the interpreter
            # (observable when the target register is rsp).
            e("regs.rip = gpr[%d]" % ops[0])
        gen.smc_check(i, off, prefix_incl, rip_set=True)
        return
    if op == int(Op.RET):
        needs.add("_fb")
        gen.rip_written = True
        e("_f = %d" % i)
        e("_a = gpr[4]")
        gen.charge()
        _inline_load(gen, 8, lambda v: 'regs.rip = _fb(%s, "little")' % v)
        e("gpr[4] = (_a + 8) & %s" % _MASK)
        return

    if op == int(Op.XADD):
        needs.update(("_mr", "_mw", "_fb"))
        e("_f = %d" % i)
        _ea_expr(gen, ops[0])
        gen.charge()
        e('_v = _fb(_mr(_a, 8), "little")')
        e('_mw(_a, ((_v + gpr[%d]) & %s).to_bytes(8, "little"))'
          % (ops[1], _MASK))
        e("gpr[%d] = _v" % ops[1])
        if not skip_flags:
            e("_r = _v")
            _alu_flags(gen)
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return
    if op == int(Op.CMPXCHG):
        needs.update(("_mr", "_mw", "_fb"))
        e("_f = %d" % i)
        _ea_expr(gen, ops[0])
        gen.charge()
        e('_v = _fb(_mr(_a, 8), "little")')
        e("if _v == gpr[0]:")
        e('_mw(_a, (gpr[%d] & %s).to_bytes(8, "little"))' % (ops[1], _MASK), 3)
        e("flags.zf = True", 3)
        e("else:")
        e("gpr[0] = _v", 3)
        e("flags.zf = False", 3)
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return
    if op == int(Op.XCHG):
        needs.update(("_mr", "_mw", "_fb"))
        e("_f = %d" % i)
        _ea_expr(gen, ops[0])
        gen.charge()
        e('_v = _fb(_mr(_a, 8), "little")')
        e('_mw(_a, (gpr[%d] & %s).to_bytes(8, "little"))' % (ops[1], _MASK))
        e("gpr[%d] = _v" % ops[1])
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return

    if op == int(Op.FMOV_XI):
        value = float(ops[1])
        if not math.isfinite(value):
            raise _Unsupported(op)
        needs.add("xmm")
        e("xmm[%d] = %r" % (ops[0], value))
        return
    if op == int(Op.FMOV_XX):
        needs.add("xmm")
        e("xmm[%d] = xmm[%d]" % (ops[0], ops[1]))
        return
    if op == int(Op.FLD):
        needs.add("xmm")
        e("_f = %d" % i)
        _ea_expr(gen, ops[1])
        gen.charge()
        _inline_load(gen, 8,
                     lambda v: 'xmm[%d] = _unpack("<d", %s)[0]' % (ops[0], v))
        return
    if op == int(Op.FST):
        needs.add("xmm")
        e("_f = %d" % i)
        _ea_expr(gen, ops[0])
        gen.charge()
        _inline_store(gen, 8, '_pack("<d", xmm[%d])' % ops[1])
        gen.smc_check(i, off, prefix_incl, rip_set=False)
        return
    if op in _FARITH:
        needs.add("xmm")
        e("try:")
        e("xmm[%d] = xmm[%d] %s xmm[%d]"
          % (ops[0], ops[0], _FARITH[op], ops[1]), 3)
        e("except (ZeroDivisionError, OverflowError):")
        e("xmm[%d] = _INF" % ops[0], 3)
        return
    if op == int(Op.FCMP):
        needs.add("xmm")
        e("_fx = xmm[%d]" % ops[0])
        e("_fy = xmm[%d]" % ops[1])
        e("flags.zf = _fx == _fy")
        e("_fl = _fx < _fy")
        e("flags.cf = _fl")
        e("flags.sf = _fl")
        e("flags.of = False")
        return
    if op == int(Op.CVTSI2SD):
        needs.add("xmm")
        e("_v = gpr[%d]" % ops[1])
        e("xmm[%d] = float(_v - %s) if _v >= %s else float(_v)"
          % (ops[0], _TWO64, _SIGN))
        return
    if op == int(Op.CVTSD2SI):
        needs.add("xmm")
        e("try:")
        e("gpr[%d] = int(xmm[%d]) & %s" % (ops[0], ops[1], _MASK), 3)
        e("except (ValueError, OverflowError):")
        e("gpr[%d] = %s" % (ops[0], _SIGN), 3)
        return

    if op == int(Op.WRFSBASE):
        e("regs.fs_base = gpr[%d]" % ops[0])
        return
    if op == int(Op.WRGSBASE):
        e("regs.gs_base = gpr[%d]" % ops[0])
        return
    if op == int(Op.RDFSBASE):
        e("gpr[%d] = regs.fs_base" % ops[0])
        return
    if op == int(Op.RDGSBASE):
        e("gpr[%d] = regs.gs_base" % ops[0])
        return

    raise _Unsupported(op)


_HOIST_LINES = {
    "_mr": "_mr = mem.read",
    "_mw": "_mw = mem.write",
    "_pages": "_pages = mem._pages",
    "_perms": "_perms = mem._perms",
    "_xpg": "_xpg = mem._exec_pages",
    "_th": "_th = mem.touch_hook",
    "_fb": "_fb = int.from_bytes",
    "_l1": "_l1 = cpu.hw_l1",
    "_llc": "_llc = cpu.hw_llc",
    "xmm": "xmm = regs.xmm",
}


def _self_loop(ends_branch: bool, ops: tuple, operands: tuple,
               offs: tuple) -> bool:
    """True when the terminator's taken edge targets the block entry.

    Only the taken edge can self-loop: fall-through is the terminator's
    own next_pc, which is always past the entry.  Such blocks compile
    into an internal spin bounded by a caller-supplied iteration budget.
    """
    if not ends_branch:
        return False
    last = ops[-1]
    if last not in _COND and last != int(Op.JMP):
        return False
    return offs[-1] + operands[-1][0] == 0


def _generate(shape: tuple) -> Optional[Tuple[str, tuple, bool,
                                              Optional[str]]]:
    """Emit source + fault-metadata for one block shape, or None.

    Returns ``(source, fault_meta, is_loop, part_source)``;
    *part_source* is the partial-execution spill variant (None when the
    shape is a single step or hits an unsupported op).
    """
    from repro.machine.cpu import OP_COST

    ends_branch, ops, operands, offs = shape
    n = len(ops)
    costs = [OP_COST[op] for op in ops]
    prefix = [0] * (n + 1)
    for i, cost in enumerate(costs):
        prefix[i + 1] = prefix[i] + cost
    skip = _dead_flags(ops)
    loop = _self_loop(ends_branch, ops, operands, offs)

    gen = _Gen()
    if loop:
        gen.extra = 1
        gen.loop_n = n
        gen.loop_total = prefix[n]
    try:
        for i in range(n - 1 if loop else n):
            _emit_step(gen, i, ops[i], operands[i], offs[i],
                       prefix[i + 1], skip[i], i == n - 1)
    except _Unsupported:
        return None

    body = gen.lines
    if loop:
        # Terminator of a self-loop: taken spins (until the `_kmax`
        # budget — the caller's quantum/trap headroom — runs out),
        # fall-through exits.  Completed iterations flush in one shot;
        # nothing observes icount/cycles/rip between iterations.
        gen.rip_written = True
        e = gen.emit
        last = ops[-1]
        if last in _COND:
            e("if %s:" % _COND[last])
            e("_it += 1", 3)
            e("if _it < _kmax:", 3)
            e("continue", 4)
            e("regs.rip = _base", 3)
            e("else:")
            e("regs.rip = (_base + %d) & %s" % (offs[-1], _MASK), 3)
            e("_it += 1", 3)
        else:  # unconditional JMP-to-self: spin out the budget
            e("_it += 1")
            e("if _it < _kmax:")
            e("continue", 3)
            e("regs.rip = _base")
        e("thread.icount += %d * _it" % n)
        e("thread.cycles += _cyd + %d * _it" % prefix[n])
        e("return %d * _it" % n)
    else:
        if not gen.rip_written:
            body.append("        regs.rip = (_base + %d) & %s"
                        % (offs[-1], _MASK))
        body.append("        thread.icount += %d" % n)
        body.append("        thread.cycles += _cyd + %d" % prefix[n])
        body.append("        return %d" % n)

    # _kmax defaults to 1 so callers that must see every block entry
    # (block tools disabling chaining) get single-iteration behavior.
    signature = ("def _cfn(cpu, thread, _base, _kmax=1):" if loop
                 else "def _cfn(cpu, thread, _base):")
    source = _assemble(gen, body, signature, n, prefix[n])
    meta = tuple((offs[i], i, prefix[i]) for i in range(n))
    return source, meta, loop, _generate_part(shape, prefix)


def _assemble(gen: _Gen, body: List[str], signature: str,
              n: int, total: int) -> str:
    """Wrap a generated body with the hoist prologue and fault epilogue."""
    lines = [signature,
             "    regs = thread.regs",
             "    gpr = regs.gpr",
             "    flags = regs.flags"]
    if gen.needs & {"_mr", "_mw"}:
        lines.append("    mem = cpu.mem")
    for name in ("_mr", "_mw", "_pages", "_perms", "_xpg", "_th",
                 "_fb", "_l1", "_llc", "xmm"):
        if name in gen.needs:
            lines.append("    " + _HOIST_LINES[name])
    lines.append("    _cyd = 0")
    lines.append("    _f = 0")
    if gen.loop_n:
        lines.append("    _it = 0")
    lines.append("    try:")
    if gen.loop_n:
        lines.append("        while True:")
    lines.extend(body)
    lines.append("    except BaseException:")
    lines.append("        _m = _META[_f]")
    lines.append("        regs.rip = (_base + _m[0]) & %s" % _MASK)
    if gen.loop_n:
        lines.append("        thread.icount += _it * %d + _m[1]" % n)
        lines.append("        thread.cycles += _cyd + _it * %d + _m[2]"
                     % total)
    else:
        lines.append("        thread.icount += _m[1]")
        lines.append("        thread.cycles += _cyd + _m[2]")
    lines.append("        raise")
    return "\n".join(lines) + "\n"


def _generate_part(shape: tuple, prefix: List[int]) -> Optional[str]:
    """Emit the partial-execution variant: run exactly ``_stop`` steps.

    Used for quantum spills (``_stop`` < n always, so the terminator is
    never reached).  Every stop point is a retire boundary the scheduler
    can observe, so dead-flag elimination is disabled — flags are
    architecturally exact at each step.
    """
    ends_branch, ops, operands, offs = shape
    n = len(ops)
    if n < 2:
        return None  # a 1-step block can never spill
    gen = _Gen()
    try:
        for i in range(n - 1):
            if i:
                gen.emit("if _stop == %d:" % i)
                gen.emit("regs.rip = (_base + %d) & %s"
                         % (offs[i - 1], _MASK), 3)
                gen.emit("thread.icount += %d" % i, 3)
                gen.emit("thread.cycles += _cyd + %d" % prefix[i], 3)
                gen.emit("return %d" % i, 3)
            _emit_step(gen, i, ops[i], operands[i], offs[i],
                       prefix[i + 1], False, False)
    except _Unsupported:
        return None
    body = gen.lines
    body.append("        regs.rip = (_base + %d) & %s"
                % (offs[n - 2], _MASK))
    body.append("        thread.icount += %d" % (n - 1))
    body.append("        thread.cycles += _cyd + %d" % prefix[n - 1])
    body.append("        return %d" % (n - 1))
    return _assemble(gen, body, "def _cfn(cpu, thread, _base, _stop):",
                     n, prefix[n])


class BlockCompiler:
    """Owns codegen and the shape-keyed compiled-function cache.

    The cache maps block shapes to compiled functions (or ``None`` for
    shapes that bailed out, so an uncompilable shape is analysed once).
    Insertion-ordered dict doubles as the eviction queue: past the cap
    the oldest entries are dropped — attached ``Block.compiled``
    references stay valid, only shape-level reuse is lost.
    """

    def __init__(self) -> None:
        self.cache: Dict[tuple, Optional[object]] = {}
        self.cache_limit = COMPILED_CACHE_LIMIT
        self.evictions = 0

    @staticmethod
    def shape_of(block) -> Optional[tuple]:
        """The reuse key: opcodes, operands, and entry-relative offsets.

        Returns None for degenerate layouts (an offset that wrapped the
        64-bit space would make base-relative RIP math ambiguous).
        """
        entry = block.entry
        offs = []
        last = 0
        for step in block.steps:
            off = step[0] - entry
            if off <= last:
                return None
            offs.append(off)
            last = off
        operands = tuple(step[2] for step in block.steps)
        return (block.ends_branch, block.ops, operands, tuple(offs))

    def compile_block(self, block) -> Optional[object]:
        shape = self.shape_of(block)
        if shape is None:
            return None
        cache = self.cache
        if shape in cache:
            return cache[shape]
        generated = _generate(shape)
        if generated is None:
            fn = None
        else:
            source, meta, loop, part_source = generated
            namespace = {
                "DivideError": _cpu().DivideError,
                "InvalidOpcode": _cpu().InvalidOpcode,
                "Flags": Flags,
                "_unpack": struct.unpack,
                "_pack": struct.pack,
                "_INF": float("inf"),
                "_META": meta,
            }
            exec(compile(source, "<px-block>", "exec"), namespace)
            fn = namespace["_cfn"]
            fn.__px_source__ = source
            fn.__px_loop__ = loop
            if part_source is not None:
                part_ns = dict(namespace)
                exec(compile(part_source, "<px-block-part>", "exec"),
                     part_ns)
                pfn = part_ns["_cfn"]
                pfn.__px_source__ = part_source
                fn.__px_part__ = pfn
        if len(cache) >= self.cache_limit:
            count = max(1, self.cache_limit // 8)
            for key in list(cache)[:count]:
                del cache[key]
            self.evictions += count
        cache[shape] = fn
        return fn


def _cpu():
    from repro.machine import cpu

    return cpu
