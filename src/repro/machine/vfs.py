"""In-memory filesystem and per-process file-descriptor table.

This is the OS-resource substrate behind the paper's "system call
handling challenge": a file opened *before* a captured region exists only
as a file descriptor, which a bare ELFie run cannot reproduce.  The
``pinball_sysstate`` tool reconstructs proxy files (``FD_n``) that a
generic ``elfie_on_start`` callback re-opens and ``dup2``s onto the right
descriptor numbers.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

# Linux open(2) flag subset.
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000
O_CLOEXEC = 0o2000000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# errno values returned as -errno from syscalls.
EBADF = 9
ENOENT = 2
EINVAL = 22
EACCES = 13
EMFILE = 24
ESPIPE = 29

#: Default in-kernel buffer size of a pipe/socket byte stream.
PIPE_CAPACITY = 65536


class VfsError(Exception):
    """Filesystem-level error carrying an errno."""

    def __init__(self, errno: int, message: str) -> None:
        self.errno = errno
        super().__init__(message)


@dataclass
class _Inode:
    """A regular file's contents."""

    data: bytearray = field(default_factory=bytearray)


class FileSystem:
    """A flat, path-keyed in-memory filesystem.

    Paths are normalized POSIX paths.  A ``root`` prefix supports
    chroot-style execution of ELFies inside a sysstate working directory
    (paper §II-C2).
    """

    def __init__(self) -> None:
        self._inodes: Dict[str, _Inode] = {}

    @staticmethod
    def normalize(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        return posixpath.normpath(path)

    def create(self, path: str, data: bytes = b"") -> None:
        """Create (or replace) a file with the given contents."""
        self._inodes[self.normalize(path)] = _Inode(bytearray(data))

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._inodes

    def contents(self, path: str) -> bytes:
        """Full contents of a file."""
        inode = self._inodes.get(self.normalize(path))
        if inode is None:
            raise VfsError(ENOENT, "no such file: %s" % path)
        return bytes(inode.data)

    def remove(self, path: str) -> None:
        if self._inodes.pop(self.normalize(path), None) is None:
            raise VfsError(ENOENT, "no such file: %s" % path)

    def paths(self) -> List[str]:
        return sorted(self._inodes)

    def _inode(self, path: str) -> _Inode:
        inode = self._inodes.get(self.normalize(path))
        if inode is None:
            raise VfsError(ENOENT, "no such file: %s" % path)
        return inode

    def copy_from(self, other: "FileSystem") -> None:
        """Copy every file from *other* into this filesystem."""
        for path in other.paths():
            self.create(path, other.contents(path))


@dataclass
class Channel:
    """One in-kernel unidirectional byte stream.

    A pipe is one channel (read end + write end over the same stream); a
    socketpair / connected socket is two channels cross-wired between the
    endpoints.  ``readers``/``writers`` count *descriptors* (dup'ed fds
    each count) so EOF and EPIPE fall out of descriptor accounting:
    reading an empty channel with no writers returns EOF, writing a
    channel with no readers raises EPIPE.
    """

    cid: int
    capacity: int = PIPE_CAPACITY
    data: bytearray = field(default_factory=bytearray)
    readers: int = 0
    writers: int = 0

    @property
    def space(self) -> int:
        return self.capacity - len(self.data)


@dataclass
class OpenFile:
    """One open-file description (shared by dup'ed descriptors).

    ``kind`` distinguishes regular files ("file") from channel-backed
    endpoints ("pipe"/"socket"); channel endpoints carry the channels
    they read from / write to and never use ``inode``/``offset``.
    """

    path: str
    flags: int
    offset: int = 0
    inode: Optional[_Inode] = None
    is_console: bool = False
    kind: str = "file"
    read_ch: Optional[Channel] = None
    write_ch: Optional[Channel] = None
    #: Local port a not-yet-connected AF_INET socket was bound to.
    bound_port: Optional[int] = None


class FileDescriptorTable:
    """Per-process descriptor table over a :class:`FileSystem`.

    Descriptors 0/1/2 are wired to console buffers so programs can
    ``write`` observable output.  The ``root`` argument re-bases all
    relative path lookups, mimicking running inside a sysstate workdir
    (or ``chroot``).
    """

    MAX_FDS = 1024

    def __init__(self, fs: FileSystem, root: str = "/") -> None:
        self.fs = fs
        self.root = root
        self._fds: Dict[int, OpenFile] = {}
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.stdin = bytearray()
        self._fds[0] = OpenFile(path="<stdin>", flags=O_RDONLY, is_console=True)
        self._fds[1] = OpenFile(path="<stdout>", flags=O_WRONLY, is_console=True)
        self._fds[2] = OpenFile(path="<stderr>", flags=O_WRONLY, is_console=True)
        #: Called after a descriptor referencing channel endpoints is
        #: dropped (close / dup2 overwrite) so the kernel can wake
        #: blocked peers that must now observe EOF or EPIPE.
        self.channel_release_hook: Optional[Callable[[OpenFile], None]] = None

    def resolve(self, path: str) -> str:
        """Resolve *path* against the table's root directory."""
        if self.root != "/" and not path.startswith("/"):
            return self.fs.normalize(posixpath.join(self.root, path))
        if self.root != "/":
            # chroot semantics: absolute paths are re-based under root
            return self.fs.normalize(self.root + "/" + path.lstrip("/"))
        return self.fs.normalize(path)

    def _alloc_fd(self, lowest: int = 3) -> int:
        for fd in range(lowest, self.MAX_FDS):
            if fd not in self._fds:
                return fd
        raise VfsError(EMFILE, "file descriptor table full")

    # -- channel-endpoint accounting ----------------------------------------

    @staticmethod
    def _account_install(open_file: OpenFile) -> None:
        if open_file.read_ch is not None:
            open_file.read_ch.readers += 1
        if open_file.write_ch is not None:
            open_file.write_ch.writers += 1

    def _account_release(self, open_file: OpenFile) -> None:
        if open_file.read_ch is None and open_file.write_ch is None:
            return
        if open_file.read_ch is not None:
            open_file.read_ch.readers -= 1
        if open_file.write_ch is not None:
            open_file.write_ch.writers -= 1
        if self.channel_release_hook is not None:
            self.channel_release_hook(open_file)

    def install(self, open_file: OpenFile, lowest: int = 3) -> int:
        """Install an open-file description at the lowest free descriptor."""
        fd = self._alloc_fd(lowest)
        self._fds[fd] = open_file
        self._account_install(open_file)
        return fd

    def install_at(self, fd: int, open_file: OpenFile) -> None:
        """Install a description at an explicit descriptor (restore path)."""
        if not 0 <= fd < self.MAX_FDS:
            raise VfsError(EBADF, "bad descriptor %d" % fd)
        previous = self._fds.get(fd)
        if previous is not None:
            self._account_release(previous)
        self._fds[fd] = open_file
        self._account_install(open_file)

    # -- syscall backends ---------------------------------------------------

    def open(self, path: str, flags: int) -> int:
        """open(2): returns a new descriptor or raises VfsError."""
        resolved = self.resolve(path)
        if not self.fs.exists(resolved):
            if not flags & O_CREAT:
                raise VfsError(ENOENT, "no such file: %s" % path)
            self.fs.create(resolved)
        inode = self.fs._inode(resolved)
        if flags & O_TRUNC and flags & (O_WRONLY | O_RDWR):
            del inode.data[:]
        fd = self._alloc_fd()
        offset = len(inode.data) if flags & O_APPEND else 0
        self._fds[fd] = OpenFile(path=resolved, flags=flags, offset=offset,
                                 inode=inode)
        return fd

    def close(self, fd: int) -> None:
        open_file = self._fds.get(fd)
        if open_file is None:
            raise VfsError(EBADF, "bad file descriptor %d" % fd)
        del self._fds[fd]
        self._account_release(open_file)

    def _get(self, fd: int) -> OpenFile:
        open_file = self._fds.get(fd)
        if open_file is None:
            raise VfsError(EBADF, "bad file descriptor %d" % fd)
        return open_file

    def read(self, fd: int, count: int) -> bytes:
        open_file = self._get(fd)
        if open_file.is_console:
            if fd != 0:
                raise VfsError(EBADF, "fd %d not open for reading" % fd)
            data = bytes(self.stdin[:count])
            del self.stdin[:count]
            return data
        if open_file.kind != "file":
            raise VfsError(EBADF, "fd %d is a %s endpoint, not a file"
                           % (fd, open_file.kind))
        if open_file.flags & O_WRONLY:
            raise VfsError(EBADF, "fd %d not open for reading" % fd)
        assert open_file.inode is not None
        data = bytes(open_file.inode.data[open_file.offset : open_file.offset + count])
        open_file.offset += len(data)
        return data

    def pread(self, fd: int, count: int, offset: int) -> bytes:
        """Positional read: like read(2) at *offset*, but never moves the
        open file description's offset (pread(2) semantics; the mmap
        file-backed path must not perturb shared dup'ed offsets)."""
        open_file = self._get(fd)
        if open_file.is_console or open_file.kind != "file":
            raise VfsError(ESPIPE, "fd %d is not seekable" % fd)
        if open_file.flags & O_WRONLY:
            raise VfsError(EBADF, "fd %d not open for reading" % fd)
        if offset < 0:
            raise VfsError(EINVAL, "negative pread offset")
        assert open_file.inode is not None
        return bytes(open_file.inode.data[offset : offset + count])

    def write(self, fd: int, data: bytes) -> int:
        open_file = self._get(fd)
        if open_file.is_console:
            if fd == 2:
                self.stderr += data
            else:
                self.stdout += data
            return len(data)
        if open_file.kind != "file":
            raise VfsError(EBADF, "fd %d is a %s endpoint, not a file"
                           % (fd, open_file.kind))
        if not open_file.flags & (O_WRONLY | O_RDWR):
            raise VfsError(EBADF, "fd %d not open for writing" % fd)
        assert open_file.inode is not None
        inode = open_file.inode
        end = open_file.offset + len(data)
        if end > len(inode.data):
            inode.data.extend(b"\x00" * (end - len(inode.data)))
        inode.data[open_file.offset : end] = data
        open_file.offset = end
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int) -> int:
        open_file = self._get(fd)
        if open_file.is_console:
            raise VfsError(EINVAL, "cannot seek a console fd")
        if open_file.kind != "file":
            raise VfsError(ESPIPE, "cannot seek a %s fd" % open_file.kind)
        assert open_file.inode is not None
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = open_file.offset + offset
        elif whence == SEEK_END:
            new = len(open_file.inode.data) + offset
        else:
            raise VfsError(EINVAL, "bad whence %d" % whence)
        if new < 0:
            raise VfsError(EINVAL, "negative seek offset")
        open_file.offset = new
        return new

    def dup(self, fd: int) -> int:
        open_file = self._get(fd)
        new_fd = self._alloc_fd()
        self._fds[new_fd] = open_file
        self._account_install(open_file)
        return new_fd

    def dup2(self, fd: int, new_fd: int) -> int:
        open_file = self._get(fd)
        if not 0 <= new_fd < self.MAX_FDS:
            raise VfsError(EBADF, "bad target descriptor %d" % new_fd)
        if new_fd == fd:
            # dup2(fd, fd) is a validity check only: the descriptor must
            # not be closed and re-installed (POSIX).
            return new_fd
        previous = self._fds.get(new_fd)
        if previous is not None:
            self._account_release(previous)
        self._fds[new_fd] = open_file
        self._account_install(open_file)
        return new_fd

    def restore(self, fd: int, path: str, flags: int, offset: int) -> None:
        """Re-open *path* at a specific descriptor number and offset.

        Used when reconstructing a pinball's region-start descriptor
        state: files opened before the captured region began must be
        open — at their recorded offsets — before the first replayed
        syscall runs.
        """
        resolved = self.resolve(path)
        if not self.fs.exists(resolved):
            raise VfsError(ENOENT, "no such file: %s" % path)
        inode = self.fs._inode(resolved)
        self.install_at(fd, OpenFile(path=resolved, flags=flags,
                                     offset=offset, inode=inode))

    def restore_unaccounted(self, fd: int, open_file: OpenFile) -> None:
        """Install a description at *fd* without touching channel
        refcounts.  Pinball restore only: the recorded reader/writer
        counts are authoritative — they already include every
        descriptor (dups) and every queued, unaccepted connection."""
        if not 0 <= fd < self.MAX_FDS:
            raise VfsError(EBADF, "bad descriptor %d" % fd)
        self._fds[fd] = open_file

    def open_fds(self) -> List[int]:
        """Sorted list of open descriptor numbers."""
        return sorted(self._fds)

    def entry(self, fd: int) -> OpenFile:
        """The open-file description behind *fd* (kernel-level access)."""
        return self._get(fd)

    def is_console_fd(self, fd: int) -> bool:
        return self._get(fd).is_console

    def fd_flags(self, fd: int) -> int:
        return self._get(fd).flags

    def fd_path(self, fd: int) -> str:
        """Path behind a descriptor (for sysstate extraction)."""
        return self._get(fd).path

    def fd_offset(self, fd: int) -> int:
        open_file = self._get(fd)
        return open_file.offset
