"""LoopPoint profiling: marker-delimited slices with per-thread progress.

The profiler is a *block* tool: loop heads are always branch targets,
so every marker crossing begins a basic block and the profiler runs on
the interpreter's superblock fast path (no per-instruction dispatch).

Global progress is the total crossing count of *work* markers summed
over all threads; sync markers (pause-spin, futex wait loops) are
counted separately and contribute neither to progress nor to the
feature vectors — that is the LoopPoint fix for multi-threaded
programs, where spin time varies run to run and would otherwise
dominate the vectors.

A slice is cut every ``slice_markers`` work crossings.  Each slice
records:

- its feature vector (marker offset -> crossings, work markers only),
- the *marker pair* delimiting it (module+offset + global per-marker
  crossing count — the LoopPoint region boundary),
- the realized global instruction-count window (so the existing
  icount-driven logger can capture the slice as a pinball under the
  same deterministic schedule), and
- per-thread retired instruction counts at the boundary (per-thread
  progress, which icount slicing cannot provide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.looppoint.markers import (
    LoopMarker,
    MarkerMap,
    MarkerPoint,
    harvest_markers,
)
from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem

#: Default work-marker crossings per slice.
DEFAULT_SLICE_MARKERS = 64


@dataclass
class LoopSlice:
    """One marker-delimited slice of a profiled run."""

    #: Feature vector: marker offset -> work crossings in this slice.
    vector: Dict[int, int]
    #: Realized global icount window [start, end) under the profiling
    #: seed's schedule.
    start_icount: int
    end_icount: int
    #: Boundary markers: None at program start / program end.
    start_marker: Optional[MarkerPoint]
    end_marker: Optional[MarkerPoint]
    #: Cycles consumed by the slice (hardware timing model).
    cycles: int
    #: Per-thread retired instructions at the slice end boundary.
    thread_progress: Dict[int, int] = field(default_factory=dict)

    @property
    def icount(self) -> int:
        return self.end_icount - self.start_icount

    @property
    def cpi(self) -> float:
        if self.icount == 0:
            return 0.0
        return self.cycles / self.icount


class LoopPointProfiler(Tool):
    """Counts marker crossings and cuts marker-delimited slices."""

    wants_instructions = False
    wants_blocks = True

    def __init__(self, marker_map: MarkerMap, slice_markers: int,
                 load_base: Optional[int] = None) -> None:
        if slice_markers <= 0:
            raise ValueError("slice_markers must be positive")
        self.marker_map = marker_map
        self.slice_markers = slice_markers
        self._markers: Dict[int, LoopMarker] = marker_map.resolve(load_base)
        self.slices: List[LoopSlice] = []
        self.work_crossings = 0
        self.sync_crossings = 0
        #: marker offset -> cumulative global crossing count.
        self.totals: Dict[int, int] = {}
        self._current: Dict[int, int] = {}
        self._slice_start_icount = 0
        self._slice_start_cycles = 0
        self._slice_start_marker: Optional[MarkerPoint] = None

    def on_basic_block(self, machine, thread, pc) -> None:
        marker = self._markers.get(pc)
        if marker is None:
            return
        if marker.is_sync:
            self.sync_crossings += 1
            return
        self.work_crossings += 1
        offset = marker.offset
        self.totals[offset] = self.totals.get(offset, 0) + 1
        self._current[offset] = self._current.get(offset, 0) + 1
        if self.work_crossings % self.slice_markers == 0:
            boundary = self.marker_map.point(offset, self.totals[offset])
            self._cut(machine, boundary)

    def _cut(self, machine, boundary: Optional[MarkerPoint]) -> None:
        end_icount = machine.total_icount()
        end_cycles = machine.total_cycles()
        if end_icount == self._slice_start_icount:
            return
        self.slices.append(LoopSlice(
            vector=self._current,
            start_icount=self._slice_start_icount,
            end_icount=end_icount,
            start_marker=self._slice_start_marker,
            end_marker=boundary,
            cycles=end_cycles - self._slice_start_cycles,
            thread_progress={tid: t.icount
                             for tid, t in machine.threads.items()},
        ))
        self._current = {}
        self._slice_start_icount = end_icount
        self._slice_start_cycles = end_cycles
        self._slice_start_marker = boundary

    def finish(self, machine) -> None:
        """Flush the trailing partial slice at program end."""
        self._cut(machine, None)


@dataclass
class LoopPointProfile:
    """Result of a whole-program LoopPoint profiling run."""

    marker_map: MarkerMap
    slice_markers: int
    slices: List[LoopSlice]
    total_icount: int = 0
    total_cycles: int = 0
    work_crossings: int = 0
    sync_crossings: int = 0
    exit_kind: str = "exit"

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def vectors(self) -> List[Dict[int, int]]:
        return [s.vector for s in self.slices]

    @property
    def whole_program_cpi(self) -> float:
        if self.total_icount == 0:
            return 0.0
        return self.total_cycles / self.total_icount

    def slice_cpi(self, index: int) -> float:
        return self.slices[index].cpi


def collect_looppoint(image: bytes,
                      slice_markers: int = DEFAULT_SLICE_MARKERS,
                      seed: int = 0,
                      fs: Optional[FileSystem] = None,
                      argv: Optional[Sequence[str]] = None,
                      marker_map: Optional[MarkerMap] = None,
                      max_icount: int = 50_000_000) -> LoopPointProfile:
    """Profile a program into marker-delimited slices.

    The marker map is harvested from *image* unless one is supplied
    (e.g. a map loaded from a campaign artifact).  The run executes to
    completion in a single ``machine.run`` call — slice boundaries are
    recorded by the tool, not imposed by the host, so profiling stays
    on the fast dispatch path throughout.
    """
    if marker_map is None:
        marker_map = harvest_markers(image)
    machine = Machine(seed=seed, fs=fs)
    load_elf(machine, image, argv=argv)
    profiler = LoopPointProfiler(marker_map, slice_markers)
    machine.attach(profiler)
    status = machine.run(max_instructions=max_icount)
    profiler.finish(machine)
    machine.detach(profiler)
    return LoopPointProfile(
        marker_map=marker_map,
        slice_markers=slice_markers,
        slices=profiler.slices,
        total_icount=machine.total_icount(),
        total_cycles=machine.total_cycles(),
        work_crossings=profiler.work_crossings,
        sync_crossings=profiler.sync_crossings,
        exit_kind=status.kind,
    )
