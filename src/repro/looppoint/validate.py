"""Marker-metered ELFie validation for LoopPoint regions.

The icount-based `_RegionMeter` in :mod:`repro.simpoint.validation`
measures a replayed region by retiring a fixed number of instructions
past the ROI marker.  For a multi-threaded ELFie replayed under a
*different* scheduler seed that window no longer contains the intended
work: spin time shifts every icount boundary, so the meter measures a
different mix of phases than the region was selected to represent.

LoopPoint regions do not have that problem, because their boundaries
are work-marker crossing counts.  The meter here counts global
crossings of the harvested *work* loop heads during replay — skipping
the warmup slices' crossings, then measuring over exactly the region's
crossing count — so the measured window is the selected work,
count-for-count, under any interleaving.

The prediction is likewise work-denominated: each region contributes
its measured *cycles per work crossing* and *instructions per work
crossing*, each cluster weight is a share of total work crossings (a
seed-invariant count), and the predicted whole-program CPI is the
ratio of the two extrapolations::

    CPI = (sum_i w_i * cycles_per_work_i) / (sum_i w_i * icount_per_work_i)

Taking the ratio cancels most of the spin-time noise: a replay
schedule that makes a region spin longer inflates its cycle and
instruction rates together.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.elfie import prepare_elfie_machine
from repro.core.pinball2elf import ElfieArtifact
from repro.isa.instructions import Op
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.pinplay.regions import RegionSpec
from repro.simpoint.validation import (
    RegionMeasurement,
    ValidationResult,
)


class _MarkerMeter(Tool):
    """Measures cycles between work-marker crossing counts.

    Arms at the ROI marker, then counts executions of the work loop
    heads (every loop-head execution is one crossing, exactly as the
    profiler counts them at block entry).  Measurement spans crossing
    counts (skip, skip + measure]; the CPI denominator is the realized
    global instruction count of that span.
    """

    wants_instructions = True

    def __init__(self, work_addrs, skip: int, measure: int) -> None:
        self.work_addrs = frozenset(work_addrs)
        self.skip = skip
        self.measure = measure
        self.crossings = 0
        self._armed = False
        self.start_cycles: Optional[int] = None
        self.start_icount = 0
        self.end_cycles: Optional[int] = None
        self.end_icount = 0

    def _begin(self, machine) -> None:
        self.start_cycles = machine.total_cycles()
        self.start_icount = machine.total_icount()

    def on_instruction(self, machine, thread, pc, insn) -> None:
        if not self._armed:
            if insn.op is Op.MARKER:
                self._armed = True
                if self.skip == 0:
                    self._begin(machine)
            return
        if pc not in self.work_addrs:
            return
        self.crossings += 1
        if self.start_cycles is None:
            if self.crossings >= self.skip:
                self._begin(machine)
            return
        if (self.end_cycles is None
                and self.crossings >= self.skip + self.measure):
            self.end_cycles = machine.total_cycles()
            self.end_icount = machine.total_icount()
            machine.request_stop("region measured")

    @property
    def cpi(self) -> Optional[float]:
        if self.start_cycles is None or self.end_cycles is None:
            return None
        retired = self.end_icount - self.start_icount
        if retired == 0:
            return None
        return (self.end_cycles - self.start_cycles) / retired

    @property
    def cycles_per_work(self) -> Optional[float]:
        if self.end_cycles is None or self.measure == 0:
            return None
        return (self.end_cycles - self.start_cycles) / self.measure

    @property
    def icount_per_work(self) -> Optional[float]:
        if self.end_cycles is None or self.measure == 0:
            return None
        return (self.end_icount - self.start_icount) / self.measure


def measure_elfie_region_markers(artifact: ElfieArtifact,
                                 region: RegionSpec,
                                 work_addrs,
                                 skip: int,
                                 measure: int,
                                 seed: int = 0,
                                 fs: Optional[FileSystem] = None,
                                 workdir: str = "/",
                                 budget_factor: int = 8
                                 ) -> RegionMeasurement:
    """Replay a LoopPoint region ELFie and measure it marker-to-marker."""
    try:
        machine, _loaded = prepare_elfie_machine(
            artifact.image, seed=seed, fs=fs, workdir=workdir)
    except Exception as exc:  # loader failures (stack collision)
        return RegionMeasurement(region=region, cpi=None, ok=False,
                                 detail="loader: %s" % exc)
    meter = _MarkerMeter(work_addrs, skip=skip, measure=measure)
    machine.attach(meter)
    # Budget in realized icounts, with headroom for spin stretching.
    budget = budget_factor * (region.warmup + region.length) + 2_000_000
    status = machine.run(max_instructions=budget)
    machine.detach(meter)
    cpi = meter.cpi
    if cpi is None:
        detail = ("died: %s" % status.detail if status.kind == "signal"
                  else "incomplete: %s (crossings %d of %d)"
                  % (status.detail, meter.crossings, skip + measure))
        return RegionMeasurement(region=region, cpi=None, ok=False,
                                 detail=detail)
    return RegionMeasurement(region=region, cpi=cpi, ok=True,
                             cycles_per_work=meter.cycles_per_work,
                             icount_per_work=meter.icount_per_work)


class LoopPointValidation(ValidationResult):
    """ValidationResult with the work-denominated CPI prediction."""

    @property
    def predicted_cpi(self) -> float:
        cycles = icount = 0.0
        for m in self.measurements:
            if not m.ok or m.cycles_per_work is None:
                continue
            cycles += m.region.weight * m.cycles_per_work
            icount += m.region.weight * m.icount_per_work
        if icount == 0:
            return 0.0
        return cycles / icount


def _region_crossings(windows: Dict[str, dict],
                      name: str) -> Optional[Tuple[int, int]]:
    window = windows.get(name) or {}
    if "skip" not in window or "measure" not in window:
        return None
    return int(window["skip"]), int(window["measure"])


def validate_looppoint(result, seed: int = 0, trials: int = 3,
                       fs: Optional[FileSystem] = None,
                       use_alternates: bool = True) -> ValidationResult:
    """ELFie-based validation with marker-metered measurement.

    Mirrors :func:`repro.simpoint.validation.validate_with_elfies` —
    trials under different replay seeds, alternates on failure — but
    each trial measures the region by its marker window (crossing
    counts from ``result.marker_windows``), not by icount.
    """
    work_addrs = result.profile.marker_map.work_addresses()
    validation = LoopPointValidation(
        app_name=result.app_name,
        whole_program_cpi=result.profile.whole_program_cpi,
    )
    for region in result.primary_regions:
        validation.measurements.append(_measure_with_alternates(
            result, region, work_addrs, seed=seed, trials=trials, fs=fs,
            use_alternates=use_alternates))
    return validation


def _measure_with_alternates(result, region: RegionSpec, work_addrs,
                             seed: int, trials: int,
                             fs: Optional[FileSystem],
                             use_alternates: bool) -> RegionMeasurement:
    candidates = [region]
    if use_alternates:
        candidates += result.alternates_for(region)
    last: Optional[RegionMeasurement] = None
    for candidate in candidates:
        artifact = result.elfies.get(candidate.name)
        crossings = _region_crossings(result.marker_windows, candidate.name)
        if artifact is None or crossings is None:
            continue
        skip, measure = crossings
        runs: List[RegionMeasurement] = []
        failure: Optional[RegionMeasurement] = None
        for trial in range(trials):
            measurement = measure_elfie_region_markers(
                artifact, candidate, work_addrs, skip=skip, measure=measure,
                seed=seed + trial * 101, fs=fs)
            if measurement.ok:
                runs.append(measurement)
            else:
                failure = measurement
                break
        if runs and failure is None:
            n = len(runs)
            return RegionMeasurement(
                region=RegionSpec(
                    start=candidate.start, length=candidate.length,
                    warmup=candidate.warmup, name=candidate.name,
                    weight=region.weight,
                ),
                cpi=sum(m.cpi for m in runs) / n,
                ok=True,
                used_alternate=(candidate.name
                                if candidate.name != region.name else None),
                cycles_per_work=sum(m.cycles_per_work for m in runs) / n,
                icount_per_work=sum(m.icount_per_work for m in runs) / n,
            )
        last = failure
    if last is not None:
        return RegionMeasurement(region=region, cpi=None, ok=False,
                                 detail=last.detail)
    return RegionMeasurement(region=region, cpi=None, ok=False,
                             detail="no ELFie available")


def _validate_looppoint_job(result, image, **params):
    return validate_looppoint(result, **params)


def looppoint_validation(label: str = "elfie-markers", seed: int = 0,
                         trials: int = 3, use_alternates: bool = True):
    """Farm validation pass: marker-metered ELFie replay measurement.

    The LoopPoint analogue of
    :func:`repro.simpoint.pinpoints.elfie_validation`.
    """
    from repro.simpoint.pinpoints import FarmValidation
    return FarmValidation(
        label=label,
        fn=_validate_looppoint_job,
        params={"seed": seed, "trials": trials,
                "use_alternates": use_alternates},
    )
