"""The LoopPoint driver: harvest, profile, cluster, capture, convert.

Mirrors :mod:`repro.simpoint.pinpoints` — same two driver shapes (a
direct single-process path and a farm-backed memoized job graph), same
capture/convert tail — but the selection stage is marker-based and the
produced ELFies' boundaries are *marker pairs*: each captured region's
manifest records the (module+offset, crossing-count) pair delimiting
it, with the realized icount window used only to drive the
deterministic logger.

Farm memo keys carry :data:`REGION_SELECTOR`, so LoopPoint artifacts
and BBV-SimPoint artifacts for the same workload can never collide in
the store (the SimPoint pipeline stamps its own selector identity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.markers import MarkerSpec
from repro.core.pinball2elf import ElfieArtifact, Pinball2Elf, Pinball2ElfOptions
from repro.farm.codec import stable_digest
from repro.farm.jobs import Job, JobGraph, Ref
from repro.farm.runner import FarmRunner
from repro.farm.store import ArtifactStore
from repro.looppoint.markers import MarkerMap, MarkerPoint
from repro.looppoint.profile import (
    DEFAULT_SLICE_MARKERS,
    LoopPointProfile,
    collect_looppoint,
)
from repro.looppoint.select import LoopPointResult, select_loop_regions
from repro.machine.vfs import FileSystem
from repro.observe import hooks
from repro.pinplay.logger import log_regions
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.simpoint.pinpoints import (
    FarmAppOutcome,
    FarmValidation,
    _capture_passes,
    _region_spec_tuple,
)

#: Selector identity/version stamped into farm memo keys and manifests.
REGION_SELECTOR = "looppoint/v1"

#: Graceful-exit budget multiplier for marker-bounded ELFies.  The
#: per-thread counters are armed at 2x the captured counts: a replay
#: under a shifted schedule redistributes spin between threads, so a
#: thread can legitimately need more instructions than it retired at
#: capture time before the region's work-marker crossings complete.
PERF_EXIT_SLACK = 2.0

#: JSON-able marker window: region name -> {"start": ..., "end": ...,
#: "skip": warmup crossings, "measure": region crossings}.  start/end
#: are MarkerPoint JSON (or None at program edges); skip/measure are
#: the replay recipe — skip that many work-marker crossings after the
#: ROI marker, then measure over the next ``measure`` crossings.
MarkerWindows = Dict[str, Dict[str, Any]]


@dataclass
class LoopPointsResult:
    """Everything the LoopPoint pipeline produced for one program.

    Duck-type compatible with :class:`PinPointsResult` where it
    matters: ``repro.simpoint.validation.validate_with_elfies`` (and
    the farm validation passes built on it) accept either.
    """

    app_name: str
    profile: LoopPointProfile
    selection: LoopPointResult
    #: Primary + alternate regions (realized icount windows).
    regions: List[RegionSpec]
    #: region name -> marker-pair boundary (JSON form).
    marker_windows: MarkerWindows = field(default_factory=dict)
    #: region name -> captured fat pinball.
    pinballs: Dict[str, Pinball] = field(default_factory=dict)
    #: region name -> generated ELFie artifact.
    elfies: Dict[str, ElfieArtifact] = field(default_factory=dict)

    @property
    def primary_regions(self) -> List[RegionSpec]:
        return [r for r in self.regions if ".alt" not in r.name]

    def alternates_for(self, region: RegionSpec) -> List[RegionSpec]:
        base = region.name.split(".alt")[0]
        return sorted(
            (r for r in self.regions if r.name.startswith(base + ".alt")),
            key=lambda r: r.name,
        )

    def marker_window(self, name: str) -> Tuple[Optional[MarkerPoint],
                                                Optional[MarkerPoint]]:
        window = self.marker_windows.get(name, {})

        def load(side: str) -> Optional[MarkerPoint]:
            data = window.get(side)
            return MarkerPoint.from_json(data) if data else None

        return load("start"), load("end")


def _window_json(selection: LoopPointResult,
                 regions: Sequence[RegionSpec]) -> MarkerWindows:
    windows: MarkerWindows = {}
    for region in regions:
        start, end = selection.marker_window(region.name)
        skip, measure = selection.measure_crossings(region.name)
        windows[region.name] = {
            "start": start.to_json() if start else None,
            "end": end.to_json() if end else None,
            "skip": skip,
            "measure": measure,
        }
    return windows


def run_looppoint(image: bytes, app_name: str,
                  slice_markers: int = DEFAULT_SLICE_MARKERS,
                  warmup_slices: int = 1,
                  max_k: int = 50,
                  seed: int = 0,
                  fs: Optional[FileSystem] = None,
                  max_alternates: int = 2,
                  capture: bool = True,
                  make_elfies: bool = True,
                  marker: Optional[MarkerSpec] = None,
                  perf_exit: bool = True,
                  cluster_seed: int = 42,
                  marker_map: Optional[MarkerMap] = None) -> LoopPointsResult:
    """Run the full LoopPoint pipeline on *image* (direct path)."""
    obs = hooks.OBS
    with obs.span("looppoint.profile", "looppoint", app=app_name):
        profile = collect_looppoint(image, slice_markers=slice_markers,
                                    seed=seed, fs=fs, marker_map=marker_map)
    with obs.span("looppoint.cluster", "looppoint", app=app_name):
        selection = select_loop_regions(profile, max_k=max_k,
                                        seed=cluster_seed)
    regions = selection.regions(warmup_slices=warmup_slices,
                                name_prefix="%s.L" % app_name,
                                max_alternates=max_alternates)
    result = LoopPointsResult(
        app_name=app_name,
        profile=profile,
        selection=selection,
        regions=regions,
        marker_windows=_window_json(selection, regions),
    )
    if not capture:
        return result
    marker = marker or MarkerSpec("sniper", 0x100)
    with obs.span("looppoint.capture", "looppoint", app=app_name):
        for group in _capture_passes(regions, profile.total_icount):
            pinballs = log_regions(image, group, seed=seed, fs=fs)
            for name, pinball in pinballs.items():
                pinball.program_icount = profile.total_icount
                result.pinballs[name] = pinball
                if make_elfies:
                    with obs.span("looppoint.convert", "looppoint",
                                  region=name):
                        artifact = Pinball2Elf(
                            pinball,
                            Pinball2ElfOptions(
                                perf_exit=perf_exit,
                                perf_exit_slack=PERF_EXIT_SLACK,
                                marker=marker),
                        ).convert()
                    result.elfies[name] = artifact
    return result


# ---------------------------------------------------------------------------
# Farm-backed driver.
# ---------------------------------------------------------------------------


def _job_profile(image: bytes, slice_markers: int,
                 seed: int) -> LoopPointProfile:
    return collect_looppoint(image, slice_markers=slice_markers, seed=seed)


def _job_select(profile: LoopPointProfile, max_k: int,
                cluster_seed: int) -> LoopPointResult:
    return select_loop_regions(profile, max_k=max_k, seed=cluster_seed)


def _job_log_group(image: bytes, regions: Sequence[RegionSpec], seed: int,
                   program_icount: int) -> Dict[str, Pinball]:
    pinballs = log_regions(image, regions, seed=seed)
    for pinball in pinballs.values():
        pinball.program_icount = program_icount
    return pinballs


def _job_convert(pinball: Optional[Pinball], perf_exit: bool,
                 marker_type: str, marker_tag: int) -> Optional[ElfieArtifact]:
    if pinball is None:
        return None
    options = Pinball2ElfOptions(
        perf_exit=perf_exit, perf_exit_slack=PERF_EXIT_SLACK,
        marker=MarkerSpec(marker_type, marker_tag))
    return Pinball2Elf(pinball, options).convert()


def _job_assemble(app_name: str, profile: LoopPointProfile,
                  selection: LoopPointResult, regions: List[RegionSpec],
                  windows: MarkerWindows,
                  groups: List[Dict[str, Pinball]],
                  elfies: Dict[str, Optional[ElfieArtifact]],
                  ) -> LoopPointsResult:
    result = LoopPointsResult(app_name=app_name, profile=profile,
                              selection=selection, regions=regions,
                              marker_windows=windows)
    for group in groups:
        result.pinballs.update(group)
    result.elfies = {name: artifact for name, artifact in elfies.items()
                     if artifact is not None}
    return result


def _job_validate(fn, result: LoopPointsResult, image: bytes,
                  params: Dict[str, Any]) -> Any:
    return fn(result, image, **params)


def add_looppoint_jobs(graph: JobGraph, image: bytes, app_name: str,
                       slice_markers: int = DEFAULT_SLICE_MARKERS,
                       warmup_slices: int = 1,
                       max_k: int = 50,
                       seed: int = 0,
                       max_alternates: int = 2,
                       marker: Optional[MarkerSpec] = None,
                       perf_exit: bool = True,
                       cluster_seed: int = 42,
                       validations: Sequence[FarmValidation] = ()) -> str:
    """Add one app's LoopPoint pipeline to a campaign graph.

    Same graph shape as :func:`add_pinpoints_jobs` (profile -> select
    -> expand into log/convert/assemble/validate); every memo key
    leads with :data:`REGION_SELECTOR` and the marker-map version, so
    selector pipelines never share cache entries.
    """
    marker = marker or MarkerSpec("sniper", 0x100)
    workload_key = stable_digest({"image": image, "app": app_name,
                                  "selector": REGION_SELECTOR})
    profile_name = "%s/profile" % app_name
    select_name = "%s/select" % app_name
    graph.add(Job(
        name=profile_name,
        fn=_job_profile,
        args=(image, slice_markers, seed),
        key=stable_digest([REGION_SELECTOR, "profile", workload_key,
                           slice_markers, seed]),
        stage="profile",
        selector=REGION_SELECTOR,
    ))

    pipeline_spec = {
        "selector": REGION_SELECTOR,
        "workload": workload_key,
        "slice_markers": slice_markers, "warmup_slices": warmup_slices,
        "max_k": max_k,
        "seed": seed, "cluster_seed": cluster_seed,
        "max_alternates": max_alternates,
        "marker": [marker.marker_type, marker.tag],
        "perf_exit": perf_exit,
        "log": {"fat": True},
    }

    def expand_selection(selection: LoopPointResult, graph: JobGraph,
                         results: Dict[str, Any]) -> None:
        profile = results[profile_name]
        regions = selection.regions(warmup_slices=warmup_slices,
                                    name_prefix="%s.L" % app_name,
                                    max_alternates=max_alternates)
        windows = _window_json(selection, regions)
        passes = _capture_passes(regions, profile.total_icount)
        group_names: List[str] = []
        convert_refs: Dict[str, Ref] = {}
        for index, group in enumerate(passes):
            group_name = "%s/log%d" % (app_name, index)
            graph.add(Job(
                name=group_name,
                fn=_job_log_group,
                args=(image, list(group), seed, profile.total_icount),
                key=stable_digest([REGION_SELECTOR, "log", workload_key,
                                   seed, {"fat": True},
                                   [_region_spec_tuple(r) for r in group]]),
                kind="pinballs",
                deps=(select_name,),
                stage="log",
                selector=REGION_SELECTOR,
            ))
            group_names.append(group_name)
            for region in group:
                convert_name = "%s/convert/%s" % (app_name, region.name)
                graph.add(Job(
                    name=convert_name,
                    fn=_job_convert,
                    args=(Ref(group_name,
                              select=lambda pbs, n=region.name: pbs.get(n)),
                          perf_exit, marker.marker_type, marker.tag),
                    key=stable_digest([REGION_SELECTOR, "elfie",
                                       workload_key,
                                       _region_spec_tuple(region),
                                       windows[region.name], seed,
                                       {"fat": True},
                                       {"perf_exit": perf_exit,
                                        "slack": PERF_EXIT_SLACK,
                                        "marker": [marker.marker_type,
                                                   marker.tag]}]),
                    stage="convert",
                    selector=REGION_SELECTOR,
                ))
                convert_refs[region.name] = Ref(convert_name)
        assemble_name = "%s/assemble" % app_name
        graph.add(Job(
            name=assemble_name,
            fn=_job_assemble,
            args=(app_name, Ref(profile_name), Ref(select_name),
                  list(regions), windows,
                  [Ref(name) for name in group_names], convert_refs),
            local=True,
            stage="assemble",
            selector=REGION_SELECTOR,
        ))
        for validation in validations:
            graph.add(Job(
                name="%s/validate/%s" % (app_name, validation.label),
                fn=_job_validate,
                args=(validation.fn, Ref(assemble_name), image,
                      dict(validation.params)),
                key=stable_digest([REGION_SELECTOR, "validate",
                                   pipeline_spec, validation.label,
                                   "%s.%s" % (validation.fn.__module__,
                                              validation.fn.__qualname__),
                                   validation.params]),
                stage="validate",
                selector=REGION_SELECTOR,
            ))

    graph.add(Job(
        name=select_name,
        fn=_job_select,
        args=(Ref(profile_name), max_k, cluster_seed),
        key=stable_digest([REGION_SELECTOR, "select", workload_key,
                           slice_markers, seed, max_k, cluster_seed]),
        stage="cluster",
        expand=expand_selection,
        selector=REGION_SELECTOR,
    ))
    return "%s/assemble" % app_name


def run_looppoint_campaign(images: Dict[str, bytes],
                           store: ArtifactStore,
                           jobs: Optional[int] = None,
                           manifest_path: Optional[str] = None,
                           runner: Optional[FarmRunner] = None,
                           slice_markers: int = DEFAULT_SLICE_MARKERS,
                           warmup_slices: int = 1,
                           max_k: int = 50,
                           seed: int = 0,
                           max_alternates: int = 2,
                           marker: Optional[MarkerSpec] = None,
                           perf_exit: bool = True,
                           cluster_seed: int = 42,
                           validations: Sequence[FarmValidation] = (),
                           preemptible: bool = False,
                           ) -> Dict[str, FarmAppOutcome]:
    """Run the LoopPoint pipeline for several apps through the farm."""
    obs = hooks.OBS
    with obs.span("campaign.build", "farm", apps=sorted(images),
                  selector=REGION_SELECTOR):
        graph = JobGraph()
        for app_name, image in images.items():
            add_looppoint_jobs(graph, image, app_name,
                               slice_markers=slice_markers,
                               warmup_slices=warmup_slices,
                               max_k=max_k, seed=seed,
                               max_alternates=max_alternates, marker=marker,
                               perf_exit=perf_exit, cluster_seed=cluster_seed,
                               validations=validations)
    if runner is None:
        runner = FarmRunner(store, jobs=jobs, manifest_path=manifest_path,
                            preemptible=preemptible)
    with obs.span("campaign.run", "farm", apps=sorted(images),
                  workers=runner.jobs, selector=REGION_SELECTOR):
        results = runner.run(graph, strict=not preemptible)
    outcomes: Dict[str, FarmAppOutcome] = {}
    for app_name in images:
        assembled = results.get("%s/assemble" % app_name)
        if assembled is None:
            continue
        outcomes[app_name] = FarmAppOutcome(
            result=assembled,
            validations={
                validation.label:
                    results["%s/validate/%s" % (app_name, validation.label)]
                for validation in validations
                if "%s/validate/%s" % (app_name, validation.label) in results
            },
        )
    return outcomes
