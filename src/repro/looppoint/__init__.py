"""LoopPoint: loop-marker region selection for multi-threaded workloads.

SimPoint-on-BBVs slices programs by global instruction count, which is
unsound for multi-threaded programs: spin/synchronization instructions
pollute the feature vectors, and a fixed icount says nothing about how
far each thread has progressed.  LoopPoint instead measures progress in
dynamic *loop-entry marker* crossings:

- :mod:`repro.looppoint.markers` — static harvest of loop back-edges
  from the ELF image into a module+offset-relative marker map, with
  pause-spin and futex-wait loops classified as synchronization;
- :mod:`repro.looppoint.profile` — a block-level profiling tool that
  counts global marker crossings (sync excluded), cuts marker-delimited
  slices, and records per-thread progress at each boundary;
- :mod:`repro.looppoint.select` — PCA projection + the shared k-means/
  BIC clustering, with work-crossing-weighted cluster weights;
- :mod:`repro.looppoint.driver` — direct and farm-backed pipelines
  producing ELFies whose boundaries are marker pairs;
- :mod:`repro.looppoint.validate` — marker-metered ELFie replay
  validation: regions are measured by counting work-marker crossings,
  so the measured window is schedule-independent.
"""

from repro.looppoint.markers import (
    MARKER_MAP_VERSION,
    LoopMarker,
    MarkerMap,
    MarkerPoint,
    harvest_markers,
    module_id,
)
from repro.looppoint.profile import (
    DEFAULT_SLICE_MARKERS,
    LoopPointProfile,
    LoopPointProfiler,
    LoopSlice,
    collect_looppoint,
)
from repro.looppoint.select import (
    LoopPointResult,
    pca_project,
    select_loop_regions,
)
from repro.looppoint.driver import (
    REGION_SELECTOR,
    LoopPointsResult,
    add_looppoint_jobs,
    run_looppoint,
    run_looppoint_campaign,
)
from repro.looppoint.validate import (
    looppoint_validation,
    measure_elfie_region_markers,
    validate_looppoint,
)

__all__ = [
    "MARKER_MAP_VERSION",
    "LoopMarker",
    "MarkerMap",
    "MarkerPoint",
    "harvest_markers",
    "module_id",
    "DEFAULT_SLICE_MARKERS",
    "LoopPointProfile",
    "LoopPointProfiler",
    "LoopSlice",
    "collect_looppoint",
    "LoopPointResult",
    "pca_project",
    "select_loop_regions",
    "REGION_SELECTOR",
    "LoopPointsResult",
    "add_looppoint_jobs",
    "run_looppoint",
    "run_looppoint_campaign",
    "looppoint_validation",
    "measure_elfie_region_markers",
    "validate_looppoint",
]
