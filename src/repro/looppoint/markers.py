"""Loop-marker harvesting: static back-edge discovery over a PX image.

LoopPoint replaces fixed instruction-count slice boundaries with *loop
entry markers*: addresses of loop heads whose dynamic crossing counts
measure global program progress.  Because we control the loader, the
harvester can walk the executable segments of the ELF image directly,
decode the (fixed-size) PX instruction stream linearly, and find every
backward REL32 branch; the branch target is a loop head and becomes a
marker.

Markers are **module+offset-relative**, never absolute: a marker is
``(module identity, offset from the module's text base)``, so the map
survives relocation/ASLR — loading the same module at a different base
yields the same map (see the round-trip test).  ``resolve`` turns the
map into absolute addresses for one concrete load base.

Synchronization code must not count as progress (spinning is not work):
a loop whose body contains a ``pause`` (the builder's active-wait
barrier idiom) or a futex syscall (``mov rax, 202`` + ``syscall``, the
futex wait-loop idiom) is classified as a *sync* marker and excluded
from both the global progress count and the per-slice vectors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.elf.reader import ElfFile
from repro.elf.structs import PF_X, PT_LOAD
from repro.isa.encoding import InstructionDecodeError, decode
from repro.isa.instructions import BRANCH_OPS, Instruction, Op

#: Bump when the harvest algorithm or map encoding changes: the version
#: participates in farm memo keys, so stale cached maps never collide
#: with maps produced by newer code.
MARKER_MAP_VERSION = 1

#: rax is GPR index 0; futex is syscall 202 (x86-64 numbering).
_RAX = 0
_SYS_FUTEX = 202


def module_id(image: bytes) -> str:
    """Content identity of a loaded module (stable across load bases
    only insofar as the *file* is unchanged; relocation happens at map
    resolution time, not in the identity)."""
    return hashlib.sha256(image).hexdigest()[:16]


@dataclass(frozen=True)
class MarkerPoint:
    """One dynamic region boundary: the *count*-th global crossing of
    the marker at ``module+offset``.

    This is the LoopPoint region-boundary representation: a pair of
    MarkerPoints delimits a region independently of instruction counts
    and of the module's load address.
    """

    module: str
    offset: int
    count: int

    def to_json(self) -> dict:
        return {"module": self.module, "offset": self.offset,
                "count": self.count}

    @classmethod
    def from_json(cls, data: dict) -> "MarkerPoint":
        return cls(module=data["module"], offset=int(data["offset"]),
                   count=int(data["count"]))


@dataclass(frozen=True)
class LoopMarker:
    """A harvested loop head, module+offset-relative."""

    #: Loop-head offset from the module's text base.
    offset: int
    #: Offset of the backward branch that closes the loop.
    backedge: int
    #: "loop" (real work), "spin" (pause idiom), "futex" (wait loop).
    kind: str = "loop"
    #: Nearest preceding symbol, for human-readable reports.
    symbol: str = ""

    @property
    def is_sync(self) -> bool:
        return self.kind != "loop"

    def to_json(self) -> dict:
        return {"offset": self.offset, "backedge": self.backedge,
                "kind": self.kind, "symbol": self.symbol}

    @classmethod
    def from_json(cls, data: dict) -> "LoopMarker":
        return cls(offset=int(data["offset"]),
                   backedge=int(data["backedge"]),
                   kind=data.get("kind", "loop"),
                   symbol=data.get("symbol", ""))


@dataclass
class MarkerMap:
    """The harvested marker set for one module.

    Offsets are relative to ``text_base`` — the lowest executable
    segment address the module was *linked* at.  ``resolve(base)``
    produces the absolute-address lookup table for a module *loaded*
    at ``base`` (defaults to the link base; under ASLR the loader
    passes the actual mapping address).
    """

    module: str
    text_base: int
    markers: List[LoopMarker] = field(default_factory=list)
    version: int = MARKER_MAP_VERSION

    @property
    def work_markers(self) -> List[LoopMarker]:
        return [m for m in self.markers if not m.is_sync]

    @property
    def sync_markers(self) -> List[LoopMarker]:
        return [m for m in self.markers if m.is_sync]

    def resolve(self, base: Optional[int] = None) -> Dict[int, LoopMarker]:
        """Absolute loop-head address -> marker, for one load base."""
        if base is None:
            base = self.text_base
        return {base + marker.offset: marker for marker in self.markers}

    def work_addresses(self, base: Optional[int] = None) -> set:
        """Absolute addresses of the work (non-sync) loop heads."""
        if base is None:
            base = self.text_base
        return {base + marker.offset for marker in self.work_markers}

    def point(self, offset: int, count: int) -> MarkerPoint:
        return MarkerPoint(module=self.module, offset=offset, count=count)

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "module": self.module,
            "text_base": self.text_base,
            "markers": [marker.to_json() for marker in self.markers],
        }

    @classmethod
    def from_json(cls, data: dict) -> "MarkerMap":
        return cls(
            module=data["module"],
            text_base=int(data["text_base"]),
            markers=[LoopMarker.from_json(m) for m in data["markers"]],
            version=int(data.get("version", MARKER_MAP_VERSION)),
        )


def _decode_segment(data: bytes, base: int) -> List[Tuple[int, Instruction]]:
    """Linearly decode one executable segment (PX opcodes are fixed
    size, and generated text segments are pure instruction streams)."""
    instructions: List[Tuple[int, Instruction]] = []
    offset = 0
    while offset < len(data):
        try:
            insn, next_offset = decode(data, offset)
        except InstructionDecodeError:
            break  # zero-padding tail / non-code bytes: stop cleanly
        instructions.append((base + offset, insn))
        offset = next_offset
    return instructions


def _classify_body(body: List[Instruction]) -> str:
    """Spin/sync classification of one loop body.

    ``pause`` marks the builder's active-wait barrier idiom; a futex
    syscall (``mov rax, 202`` dominating a ``syscall``) marks a futex
    wait loop.  Either way, iterating the loop is synchronization, not
    forward progress.
    """
    rax_is_futex = False
    for insn in body:
        if insn.op is Op.PAUSE:
            return "spin"
        if insn.op is Op.MOV_RI and insn.operands[0] == _RAX:
            rax_is_futex = insn.operands[1] == _SYS_FUTEX
        elif insn.op is Op.SYSCALL and rax_is_futex:
            return "futex"
    return "loop"


_KIND_RANK = {"loop": 0, "spin": 1, "futex": 2}


def harvest_markers(image: bytes) -> MarkerMap:
    """Walk *image*'s executable segments and emit its marker map."""
    elf = ElfFile(image)
    exec_segments = [s for s in elf.segments
                     if s.p_type == PT_LOAD and s.p_flags & PF_X]
    if not exec_segments:
        raise ValueError("image has no executable segments")
    text_base = min(s.p_vaddr for s in exec_segments)

    # symbol spans, for attaching a human-readable name to each head
    symbols = sorted(
        ((addr, name) for name, addr in elf.symbol_map().items()),
        key=lambda pair: (pair[0], pair[1]))

    def nearest_symbol(addr: int) -> str:
        best = ""
        for sym_addr, name in symbols:
            if sym_addr > addr:
                break
            best = name
        return best

    heads: Dict[int, LoopMarker] = {}
    for segment in exec_segments:
        data = elf.data[segment.p_offset:segment.p_offset + segment.p_filesz]
        instructions = _decode_segment(data, segment.p_vaddr)
        index_of = {addr: i for i, (addr, _) in enumerate(instructions)}
        for i, (addr, insn) in enumerate(instructions):
            if insn.op not in BRANCH_OPS or insn.op is Op.CALL:
                continue
            target = addr + insn.size + insn.operands[0]
            if target > addr or target not in index_of:
                continue  # forward branch, or target outside this segment
            body = [body_insn for _, body_insn
                    in instructions[index_of[target]:i + 1]]
            kind = _classify_body(body)
            marker = LoopMarker(offset=target - text_base,
                                backedge=addr - text_base,
                                kind=kind,
                                symbol=nearest_symbol(target))
            previous = heads.get(target)
            # several back-edges can share a head (continue statements);
            # the most synchronization-like classification wins
            if (previous is None
                    or _KIND_RANK[kind] > _KIND_RANK[previous.kind]):
                heads[target] = marker
    return MarkerMap(
        module=module_id(image),
        text_base=text_base,
        markers=[heads[addr] for addr in sorted(heads)],
    )
