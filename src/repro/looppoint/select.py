"""LoopPoint region selection: PCA projection + k-means over marker
vectors.

The clustering machinery is shared with SimPoint
(:func:`repro.simpoint.kmeans.cluster_points`); what differs is the
feature pipeline (PCA instead of random projection — marker vectors are
much lower-dimensional than BBVs, so the principal components are both
cheap and informative) and the weighting: marker-delimited slices have
*variable* instruction counts, so a cluster's weight is the fraction of
retired instructions its members cover, not the fraction of slices.

Every selected region carries two coordinate systems:

- the **marker window** — (module+offset, crossing count) boundary
  pair, the load-address-independent LoopPoint identity; and
- the **realized icount window** — where those crossings landed under
  the profiling seed's deterministic schedule, which is what the
  existing icount-driven logger uses to capture the region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.looppoint.markers import MarkerMap, MarkerPoint
from repro.looppoint.profile import LoopPointProfile, LoopSlice
from repro.pinplay.regions import RegionSpec
from repro.simpoint.kmeans import KMeansResult, cluster_points
from repro.simpoint.simpoint import SimPointCluster

#: Default PCA dimensionality (marker vectors are small; a handful of
#: components captures the phase structure).
PCA_DIM = 8


def pca_project(vectors: Sequence[Dict[int, int]],
                dim: int = PCA_DIM) -> np.ndarray:
    """L1-normalize sparse marker vectors and PCA-project to *dim*.

    Deterministic by construction: the dense layout is the sorted key
    set, the decomposition is an SVD of the centered matrix, and each
    component's sign is fixed so its largest-magnitude coordinate is
    positive (SVD sign ambiguity would otherwise vary across LAPACK
    builds).
    """
    keys = sorted({key for vector in vectors for key in vector})
    dense = np.zeros((len(vectors), max(len(keys), 1)))
    index = {key: i for i, key in enumerate(keys)}
    for row, vector in enumerate(vectors):
        total = sum(vector.values())
        if total == 0:
            continue
        for key, count in vector.items():
            dense[row, index[key]] = count / total
    centered = dense - dense.mean(axis=0)
    rank = min(dim, centered.shape[0], centered.shape[1])
    if rank == 0:
        return np.zeros((len(vectors), 1))
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    components = vt[:rank]
    signs = np.sign(components[np.arange(rank),
                               np.argmax(np.abs(components), axis=1)])
    signs[signs == 0] = 1.0
    components = components * signs[:, None]
    return centered @ components.T


@dataclass
class LoopPointResult:
    """Selected marker-delimited regions for one program."""

    profile: LoopPointProfile
    clusters: List[SimPointCluster]
    kmeans: KMeansResult
    #: region name -> slice index (primaries and alternates).
    slice_of: Dict[str, int] = field(default_factory=dict)
    #: region name -> warmup depth in whole marker slices.
    warmup_slices_of: Dict[str, int] = field(default_factory=dict)

    @property
    def k(self) -> int:
        return len(self.clusters)

    @property
    def marker_map(self) -> MarkerMap:
        return self.profile.marker_map

    def regions(self, warmup_slices: int = 1, name_prefix: str = "L",
                max_alternates: int = 0) -> List[RegionSpec]:
        """RegionSpecs (realized icount windows) for representatives
        and alternates; alternates get an ``.altN`` name suffix and
        their primary's weight, mirroring SimPoint.

        Warmup is *marker-denominated*: ``warmup_slices`` whole
        preceding slices (clipped at program start).  That keeps every
        boundary of the captured window — warmup start, region start,
        region end — on an exact work-marker crossing count, so a
        replay can locate the region by counting crossings no matter
        how the schedule (and therefore every icount) shifts.  The
        RegionSpec's ``warmup`` field carries the *realized* icount of
        those slices under the profiling schedule, which is what the
        icount-driven logger consumes.
        """
        specs: List[RegionSpec] = []
        self.slice_of.clear()
        self.warmup_slices_of.clear()
        slices = self.profile.slices
        for cluster in self.clusters:
            for rank in range(max_alternates + 1):
                slice_index = cluster.alternate(rank)
                if slice_index is None:
                    continue
                chunk = slices[slice_index]
                depth = min(warmup_slices, slice_index)
                warmup_icount = (chunk.start_icount
                                 - slices[slice_index - depth].start_icount)
                suffix = "" if rank == 0 else ".alt%d" % rank
                name = "%s%d%s" % (name_prefix, cluster.cluster_id, suffix)
                specs.append(RegionSpec(
                    start=chunk.start_icount,
                    length=chunk.icount,
                    warmup=warmup_icount,
                    name=name,
                    weight=cluster.weight,
                ))
                self.slice_of[name] = slice_index
                self.warmup_slices_of[name] = depth
        return specs

    def measure_crossings(self, name: str) -> Tuple[int, int]:
        """(skip, measure) work-marker crossing counts for replaying a
        named region: skip that many crossings after the ROI marker
        (the warmup slices), then measure over the next ``measure``
        crossings — the region itself, count-for-count."""
        slice_index = self.slice_of[name]
        skip = self.warmup_slices_of[name] * self.profile.slice_markers
        measure = sum(self.profile.slices[slice_index].vector.values())
        return skip, measure

    def marker_window(self, name: str) -> Tuple[Optional[MarkerPoint],
                                                Optional[MarkerPoint]]:
        """The marker-pair boundary of a named region (None at program
        start/end, where no marker crossing delimits the slice)."""
        chunk = self.slice_at(name)
        return chunk.start_marker, chunk.end_marker

    def slice_at(self, name: str) -> LoopSlice:
        return self.profile.slices[self.slice_of[name]]


def select_loop_regions(profile: LoopPointProfile,
                        max_k: int = 50,
                        seed: int = 42,
                        dim: int = PCA_DIM,
                        max_candidates: int = 4) -> LoopPointResult:
    """Cluster a LoopPoint profile and pick weighted representatives.

    Weights are *work-crossing* fractions, not instruction-count
    fractions: the whole-program extrapolation multiplies each
    representative's per-crossing rates (cycles and instructions per
    work crossing) by its cluster's share of total work, and the total
    work count — unlike the total icount — is invariant under scheduler
    perturbations, which is what makes the prediction robust when the
    measurement schedule differs from the profiling schedule.
    """
    if not profile.slices:
        raise ValueError(
            "profile has no marker-delimited slices (no work-loop "
            "markers crossed — is the workload loop-free?)")
    points = pca_project(profile.vectors, dim=dim)
    kmeans = cluster_points(points, max_k=max_k, seed=seed)
    crossings = [sum(s.vector.values()) for s in profile.slices]
    total_crossings = sum(crossings) or 1
    clusters: List[SimPointCluster] = []
    for cluster_id in range(kmeans.k):
        members = kmeans.members(cluster_id)
        if len(members) == 0:
            continue
        distances = kmeans.distances_to_centroid(cluster_id)
        order = np.argsort(distances, kind="stable")
        candidates = [int(members[i]) for i in order[:max_candidates]]
        weight = sum(crossings[int(m)] for m in members) / total_crossings
        clusters.append(SimPointCluster(
            cluster_id=cluster_id,
            weight=min(weight, 1.0),
            candidates=candidates,
        ))
    return LoopPointResult(profile=profile, clusters=clusters,
                           kmeans=kmeans)
