"""PinPlay substrate: region capture (logger), pinballs, constrained replay.

Mirrors the PinPlay toolkit the paper builds on (§II-A):

- :mod:`repro.pinplay.regions` -- region-of-interest specifications,
- :mod:`repro.pinplay.logger` -- the logger tool that captures a region
  of a program's execution into a pinball, with the paper's new fat
  switches (``-log:whole_image``, ``-log:pages_early``, ``-log:fat``),
- :mod:`repro.pinplay.pinball` -- the on-disk pinball format
  (``.text`` memory image, per-thread ``.reg``, ``.sel`` side-effect
  log, ``.race`` thread-order log, ``.result`` metadata),
- :mod:`repro.pinplay.replayer` -- constrained replay with system-call
  injection and thread-order enforcement, plus the paper's new
  ``-replay:injection 0`` mode that mimics an ELFie run under Pin,
- :mod:`repro.pinplay.sysstate` -- the ``pinball_sysstate`` tool that
  extracts file and heap OS state for ELFie re-execution (§II-C2).
"""

from repro.pinplay.regions import RegionSpec
from repro.pinplay.pinball import Pinball, SyscallRecord, ThreadRecord
from repro.pinplay.logger import LogOptions, log_region, log_regions
from repro.pinplay.replayer import ReplayResult, replay
from repro.pinplay.sysstate import SysState, extract_sysstate

__all__ = [
    "RegionSpec",
    "Pinball",
    "SyscallRecord",
    "ThreadRecord",
    "LogOptions",
    "log_region",
    "log_regions",
    "ReplayResult",
    "replay",
    "SysState",
    "extract_sysstate",
]
