"""Snapshot save/restore hooks for PinPlay tools.

A machine suspended mid-capture (the logger's ``_RecordingTool``) or
mid-replay (the replayer's ``_InjectionTool``) carries tool-internal
cursors that the resumed run must continue from: the recorder's
accumulated syscall log and touched-page set, the injector's per-thread
syscall queues and divergence flag.  This plugin serializes them.

Tool instances are matched by class name and attachment order: the
restore side attaches freshly constructed tools (the snapshot cannot
pickle live tools — they hold machine references), then this plugin
rehydrates the nth attached instance of each class from the nth saved
record.  ``needs_tools`` is therefore True: the plugin runs in the
second restore phase, after :func:`repro.snapshot.state.restore` has
re-attached the caller's tools.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.pinplay.logger import _RecordingTool
from repro.pinplay.pinball import SyscallRecord
from repro.pinplay.replayer import DivergenceInfo, _InjectionTool
from repro.snapshot.plugins import SnapshotPlugin, register_plugin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine


def _encode_divergence(info: Optional[DivergenceInfo]) -> Optional[dict]:
    if info is None:
        return None
    return {"kind": info.kind, "tid": info.tid, "pc": info.pc,
            "icount": info.icount, "detail": info.detail}


def _decode_divergence(data: Optional[dict]) -> Optional[DivergenceInfo]:
    if data is None:
        return None
    return DivergenceInfo(kind=data["kind"], tid=data["tid"], pc=data["pc"],
                          icount=data["icount"], detail=data["detail"])


def _save_recorder(tool: _RecordingTool) -> dict:
    return {
        "lazy": tool.lazy,
        "syscalls": [record.to_json() for record in tool.syscalls],
        "touched_pages": sorted(tool.touched_pages),
        "pending": [[tid, list(args), path]
                    for tid, (args, path) in sorted(tool._pending.items())],
    }


def _restore_recorder(tool: _RecordingTool, state: dict) -> None:
    tool.lazy = state["lazy"]
    tool.wants_instructions = state["lazy"]
    tool.syscalls = [SyscallRecord.from_json(item)
                     for item in state["syscalls"]]
    tool.touched_pages = set(state["touched_pages"])
    tool._pending = {tid: (tuple(args), path)
                     for tid, args, path in state["pending"]}


def _save_injector(tool: _InjectionTool) -> dict:
    return {
        "queues": [[tid, [record.to_json() for record in queue]]
                   for tid, queue in sorted(tool._queues.items())],
        "injected": tool.injected,
        "native_syscalls": tool.native_syscalls,
        "diverged": _encode_divergence(tool.diverged),
        "instrument": tool.wants_instructions,
        "replayed_instructions": tool.replayed_instructions,
        "monitored_accesses": tool.monitored_accesses,
        "uncaptured_accesses": tool.uncaptured_accesses,
        "pending": [[tid, record.to_json()]
                    for tid, record in sorted(tool._pending.items())],
        "captured_pages": sorted(tool._captured_pages),
    }


def _restore_injector(tool: _InjectionTool, state: dict) -> None:
    tool._queues = {tid: [SyscallRecord.from_json(item) for item in queue]
                    for tid, queue in state["queues"]}
    tool.injected = state["injected"]
    tool.native_syscalls = state["native_syscalls"]
    tool.diverged = _decode_divergence(state["diverged"])
    tool.wants_instructions = state["instrument"]
    tool.wants_memory = state["instrument"]
    tool.replayed_instructions = state["replayed_instructions"]
    tool.monitored_accesses = state["monitored_accesses"]
    tool.uncaptured_accesses = state["uncaptured_accesses"]
    tool._pending = {tid: SyscallRecord.from_json(item)
                     for tid, item in state["pending"]}
    tool._captured_pages = frozenset(state["captured_pages"])


_SAVERS = {
    "_RecordingTool": _save_recorder,
    "_InjectionTool": _save_injector,
}
_RESTORERS = {
    "_RecordingTool": _restore_recorder,
    "_InjectionTool": _restore_injector,
}


class PinplaySnapshotPlugin(SnapshotPlugin):
    name = "pinplay"
    needs_tools = True

    def save(self, machine: "Machine") -> Optional[dict]:
        records = []
        for tool in machine.tools:
            saver = _SAVERS.get(tool.__class__.__name__)
            if saver is not None:
                records.append([tool.__class__.__name__, saver(tool)])
        return {"tools": records} if records else None

    def restore(self, machine: "Machine", state: dict) -> None:
        pools = {}
        for tool in machine.tools:
            pools.setdefault(tool.__class__.__name__, []).append(tool)
        taken = {}
        for class_name, tool_state in state["tools"]:
            index = taken.get(class_name, 0)
            taken[class_name] = index + 1
            pool = pools.get(class_name, [])
            if index < len(pool):
                _RESTORERS[class_name](pool[index], tool_state)
        # wants_instructions may have changed; resync the dispatch path.
        machine._rebuild_tool_lists()


register_plugin(PinplaySnapshotPlugin())
