"""The PinPlay logger: capture a region of execution into a pinball.

The logger runs the test program on a machine, fast-forwards to the
region start, snapshots the architectural state, then records during the
region: every system call's results and memory side-effects, the
realized thread schedule, and (in lazy mode) the set of touched pages.

Fat-pinball switches (paper §II-A):

``whole_image``
    Record *all* mapped pages, including sections never touched in the
    region (``-log:whole_image``).
``pages_early``
    Put page contents in the initial memory image rather than as lazy
    injection records (``-log:pages_early``).  In this reproduction
    page contents are always from region start; the switch controls
    whether untouched pages survive into the ``.text`` file.
``fat``
    Both of the above (``-log:fat``).  ELFies must be generated from
    fat pinballs; an ELFie from a lazy pinball is missing pages and
    usually dies on its first divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.machine.cpu import NO_TRAP
from repro.machine.kernel import NR
from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.machine.memory import PAGE_SHIFT
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.observe import hooks
from repro.pinplay.pinball import (
    OpenFileRecord,
    Pinball,
    SyscallRecord,
    ThreadRecord,
)
from repro.pinplay.regions import RegionSpec


@dataclass
class LogOptions:
    """Logger configuration (the -log:* switches)."""

    name: str = "pinball"
    fat: bool = True
    whole_image: Optional[bool] = None
    pages_early: Optional[bool] = None

    def resolved(self) -> Tuple[bool, bool]:
        """Effective (whole_image, pages_early) after -log:fat."""
        whole = self.whole_image if self.whole_image is not None else self.fat
        early = self.pages_early if self.pages_early is not None else self.fat
        return whole, early


class _RecordingTool(Tool):
    """Tool attached for the duration of the region capture."""

    wants_instructions = False

    def __init__(self, lazy: bool) -> None:
        self.lazy = lazy
        self.wants_instructions = lazy  # code-page tracking needs the PC
        self.syscalls: List[SyscallRecord] = []
        self.touched_pages: Set[int] = set()
        self._pending: Dict[int, Tuple[Tuple[int, ...], Optional[str]]] = {}

    def on_instruction(self, machine, thread, pc, insn) -> None:
        # lazy mode: code pages are "touched" by fetching from them;
        # an instruction straddling a page boundary touches both pages
        self.touched_pages.add(pc >> PAGE_SHIFT)
        last = (pc + insn.size - 1) >> PAGE_SHIFT
        if last != (pc >> PAGE_SHIFT):
            self.touched_pages.add(last)

    def on_syscall_before(self, machine, thread, number):
        gpr = thread.regs.gpr
        args = (gpr[7], gpr[6], gpr[2], gpr[10], gpr[8], gpr[9])
        path = None
        if number == NR.OPEN:
            try:
                path = machine.mem.read_cstring(gpr[7]).decode("utf-8", "replace")
            except Exception:
                path = None
        self._pending[thread.tid] = (args, path)
        return None

    def on_syscall_after(self, machine, thread, number, result) -> None:
        args, path = self._pending.pop(thread.tid, ((0,) * 6, None))
        self.syscalls.append(
            SyscallRecord(
                tid=thread.tid,
                number=number,
                args=args,
                result=result,
                writes=list(machine.kernel.last_effects),
                path=path,
                native=machine.kernel.last_native,
            )
        )


def _thread_snapshot(thread) -> ThreadRecord:
    """Capture one thread's region-start state, PMU trap included."""
    record = ThreadRecord(
        tid=thread.tid, regs=thread.regs.copy(),
        blocked=thread.blocked, futex_addr=thread.futex_addr,
        sigmask=thread.sigmask, pending=thread.pending,
        wait_channel=thread.wait_channel,
    )
    if thread.pmu_trap_at != NO_TRAP:
        # The trap point is an absolute icount; replay threads restart
        # at zero, so store the remaining distance.
        record.pmu_remaining = thread.pmu_trap_at - thread.icount
        record.pmu_handler = thread.pmu_handler
    return record


def _capture_open_files(machine: Machine) -> List[OpenFileRecord]:
    """Snapshot the non-console descriptor table at region start."""
    fdt = machine.kernel.fdt
    records = []
    for fd in fdt.open_fds():
        if fdt.is_console_fd(fd):
            continue
        of = fdt.entry(fd)
        records.append(OpenFileRecord(
            fd=fd, path=of.path, flags=of.flags, offset=of.offset,
            kind=of.kind,
            read_cid=of.read_ch.cid if of.read_ch else None,
            write_cid=of.write_ch.cid if of.write_ch else None,
            bound_port=of.bound_port,
        ))
    return records


def _capture_futex_waiters(machine: Machine) -> Dict[int, List[int]]:
    """Snapshot the futex wait-queue order at region start."""
    return {addr: list(tids)
            for addr, tids in machine.kernel._futex_waiters.items()
            if tids}


def _capture_kernel_ipc(machine: Machine) -> dict:
    """Snapshot channel/signal/shm kernel state at region start.

    Returned keys match :class:`Pinball` field names so callers can
    splat the dict straight into the constructor.
    """
    kernel = machine.kernel
    return {
        "channels": {
            chan.cid: {
                "capacity": chan.capacity,
                "data": bytes(chan.data).hex(),
                "readers": chan.readers,
                "writers": chan.writers,
            }
            for chan in kernel.channels.values()
        },
        "channel_waiters": {cid: list(tids) for cid, tids
                            in kernel._channel_waiters.items() if tids},
        "listeners": {
            listener.port: {
                "backlog": listener.backlog,
                "wait_cid": listener.wait_cid,
                "queue": [[rc, wc] for rc, wc in listener.queue],
            }
            for listener in kernel._listeners.values()
        },
        "sigactions": dict(kernel.sigactions),
        "process_pending": kernel.process_pending,
        "shm_segments": {
            seg.shmid: {
                "key": seg.key,
                "size": seg.size,
                "data": bytes(seg.data).hex(),
                "attached_at": seg.attached_at,
                "attached_len": seg.attached_len,
            }
            for seg in kernel.shm_segments.values()
        },
        "next_channel_id": kernel._next_channel_id,
        "next_shmid": kernel._next_shmid,
    }


def log_regions(image: bytes, regions: Sequence[RegionSpec],
                seed: int = 0,
                argv: Optional[Sequence[str]] = None,
                fs: Optional[FileSystem] = None,
                fat: bool = True,
                aslr_seed: Optional[int] = None) -> Dict[str, Pinball]:
    """Capture several regions of one program in a single run.

    Functionally equivalent to calling :func:`log_region` once per
    region (each capture window is ``[warmup_start, end)``), but the
    program executes only once: the recorder stays attached and the
    per-region state snapshots are taken as the run crosses each
    boundary.  Capture windows must not overlap.  Regions whose window
    starts beyond program exit are skipped.  Only fat pinballs are
    supported (the single-pass recorder does not track per-region page
    touches).
    """
    if not fat:
        raise ValueError("log_regions only produces fat pinballs")
    ordered = sorted(regions, key=lambda r: r.warmup_start)
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier.end > later.warmup_start:
            raise ValueError(
                "capture windows of %s and %s overlap"
                % (earlier.name, later.name))

    machine = Machine(seed=seed, fs=fs)
    load_elf(machine, image, argv=argv, aslr_seed=aslr_seed)
    recorder = _RecordingTool(lazy=False)
    out: Dict[str, Pinball] = {}

    obs = hooks.OBS
    for region in ordered:
        window_start = region.warmup_start
        window_length = region.end - window_start
        # Fast-forward with no tool attached: the gap between capture
        # windows runs on the interpreter's uninstrumented fast path.
        if machine.executed_total < window_start:
            with obs.span("logger.fast_forward", "pinplay",
                          region=region.name):
                status = machine.run(max_instructions=window_start)
            if status.kind != "stopped":
                break  # program ended before this region
        pages = machine.mem.snapshot()
        perms = machine.mem.snapshot_perms()
        start_icounts: Dict[int, int] = {}
        threads: List[ThreadRecord] = []
        for thread in machine.threads.values():
            if not thread.alive:
                continue
            start_icounts[thread.tid] = thread.icount
            threads.append(_thread_snapshot(thread))
        brk_start = machine.kernel.brk_start
        brk_end = machine.kernel.brk_end
        next_tid = machine._next_tid
        open_files = _capture_open_files(machine)
        futex_waiters = _capture_futex_waiters(machine)
        ipc_state = _capture_kernel_ipc(machine)
        recorder.syscalls = []
        machine.attach(recorder)
        machine.scheduler.record = True
        machine.scheduler.trace = []
        with obs.span("logger.record", "pinplay", region=region.name):
            status = machine.run(
                max_instructions=window_start + window_length)
        machine.scheduler.record = False
        machine.detach(recorder)
        for record in threads:
            thread = machine.threads[record.tid]
            record.region_icount = thread.icount - start_icounts[record.tid]
        if obs.enabled:
            obs.count("logger.regions")
            obs.count("logger.pages_captured", len(pages))
            obs.count("logger.syscall_records", len(recorder.syscalls))
        out[region.name] = Pinball(
            name=region.name,
            region=region,
            pages={page << PAGE_SHIFT: (perms[page], data)
                   for page, data in pages.items()},
            threads=threads,
            syscalls=list(recorder.syscalls),
            schedule=list(machine.scheduler.trace),
            brk_start=brk_start,
            brk_end=brk_end,
            fat=True,
            whole_image=True,
            pages_early=True,
            next_tid=next_tid,
            open_files=open_files,
            futex_waiters=futex_waiters,
            **ipc_state,
        )
        if status.kind != "stopped":
            break
    return out


def log_region(image: bytes, region: RegionSpec,
               options: Optional[LogOptions] = None,
               seed: int = 0,
               argv: Optional[Sequence[str]] = None,
               fs: Optional[FileSystem] = None,
               aslr_seed: Optional[int] = None) -> Pinball:
    """Run *image* and capture *region* (warmup included) as a pinball.

    The captured window is ``[region.warmup_start, region.end)`` so that
    replay and ELFie runs can execute the warmup before the measured
    region, as PinPoints does.  Raises ``ValueError`` if the program
    exits before the window starts.
    """
    options = options or LogOptions()
    whole_image, pages_early = options.resolved()

    machine = Machine(seed=seed, fs=fs)
    load_elf(machine, image, argv=argv, aslr_seed=aslr_seed)

    window_start = region.warmup_start
    window_length = region.end - window_start

    obs = hooks.OBS

    # Fast-forward (uninstrumented) to the window start.
    if window_start:
        with obs.span("logger.fast_forward", "pinplay", region=region.name):
            status = machine.run(max_instructions=window_start)
        if status.kind != "stopped":
            raise ValueError(
                "program ended (%s) before region start at %d instructions"
                % (status.kind, window_start)
            )

    # Snapshot state at window start.
    pages = machine.mem.snapshot()
    perms = machine.mem.snapshot_perms()
    start_icounts: Dict[int, int] = {}
    threads: List[ThreadRecord] = []
    for thread in machine.threads.values():
        if not thread.alive:
            continue
        start_icounts[thread.tid] = thread.icount
        threads.append(_thread_snapshot(thread))
    brk_start = machine.kernel.brk_start
    brk_end = machine.kernel.brk_end
    # tid allocation state must be snapshotted *before* the record
    # window: a clone inside the region bumps the counter, and replay
    # must re-allocate the same tids the recording run handed out.
    next_tid = machine._next_tid
    open_files = _capture_open_files(machine)
    futex_waiters = _capture_futex_waiters(machine)
    ipc_state = _capture_kernel_ipc(machine)

    # Record during the window.
    recorder = _RecordingTool(lazy=not pages_early)
    machine.attach(recorder)
    machine.scheduler.record = True
    machine.scheduler.trace = []
    if not whole_image:
        machine.mem.touch_hook = (
            lambda page, is_write: recorder.touched_pages.add(page)
        )
    with obs.span("logger.record", "pinplay", region=region.name):
        machine.run(max_instructions=window_start + window_length)
    machine.scheduler.record = False
    machine.mem.touch_hook = None
    machine.detach(recorder)

    for record in threads:
        thread = machine.threads[record.tid]
        record.region_icount = thread.icount - start_icounts[record.tid]

    if whole_image:
        kept = pages
    else:
        kept = {page: data for page, data in pages.items()
                if page in recorder.touched_pages}

    if obs.enabled:
        obs.count("logger.regions")
        obs.count("logger.pages_captured", len(kept))
        obs.count("logger.syscall_records", len(recorder.syscalls))

    return Pinball(
        name=options.name,
        region=region,
        pages={page << PAGE_SHIFT: (perms[page], data)
               for page, data in kept.items()},
        threads=threads,
        syscalls=recorder.syscalls,
        schedule=list(machine.scheduler.trace),
        brk_start=brk_start,
        brk_end=brk_end,
        fat=whole_image and pages_early,
        whole_image=whole_image,
        pages_early=pages_early,
        program_icount=0,
        next_tid=next_tid,
        open_files=open_files,
        futex_waiters=futex_waiters,
        **ipc_state,
    )
