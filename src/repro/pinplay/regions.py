"""Region-of-interest specifications.

A region is a window of whole-program execution measured in *global*
retired instructions (summed over threads), matching how PinPoints
slices programs.  The warmup length is carried as metadata for
simulators that warm caches before the measured region.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RegionSpec:
    """A region of interest: ``[start, start + length)`` global icount."""

    start: int
    length: int
    warmup: int = 0
    #: Identifier, e.g. "502.gcc_r.r3" or a SimPoint cluster tag.
    name: str = "region"
    #: SimPoint weight of this region (fraction of whole execution).
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("region start must be >= 0")
        if self.length <= 0:
            raise ValueError("region length must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def warmup_start(self) -> int:
        """Where warmup execution begins (clamped at program start)."""
        return max(0, self.start - self.warmup)

    def with_warmup(self, warmup: int) -> "RegionSpec":
        """Copy of this region with a different warmup length."""
        return RegionSpec(start=self.start, length=self.length,
                          warmup=warmup, name=self.name, weight=self.weight)
