"""Constrained replay of pinballs.

Replay reconstructs the captured machine state (memory image, per-thread
registers, heap break, blocked threads), then re-executes the region
with:

- **system-call injection**: system calls are skipped and their recorded
  register results and memory side-effects are injected instead
  (``clone`` is the exception — it must really create the thread), and
- **thread-order enforcement**: the scheduler consumes the recorded
  slice log, reproducing the captured interleaving.

With ``injection=False`` (the paper's new ``-replay:injection 0``
switch) neither mechanism is applied: system calls re-execute natively
and the scheduler free-runs — mimicking an ELFie execution while still
under the replay harness, which the paper added for debugging ELFie
failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.machine.kernel import NR
from repro.machine.machine import ExitStatus, Machine
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.observe import hooks
from repro.pinplay.pinball import Pinball, SyscallRecord


class ReplayDivergence(Exception):
    """The replayed execution no longer matches the recorded log."""


class _InjectionTool(Tool):
    """Skips system calls and injects their recorded effects.

    Like PinPlay's replayer, the tool instruments every instruction
    (region-length accounting) and — for multi-threaded pinballs —
    every memory operand (shared-memory order bookkeeping).  This
    dynamic instrumentation is where constrained replay's run-time
    overhead over a native run comes from (Table I); pass
    ``instrument=False`` when a simulator provides its own
    instrumentation (the Sniper + PinPlay integration).
    """

    wants_instructions = True
    wants_memory = False

    def __init__(self, pinball: Pinball, instrument: bool = True) -> None:
        self._queues: Dict[int, List[SyscallRecord]] = {}
        for record in pinball.syscalls:
            self._queues.setdefault(record.tid, []).append(record)
        self.injected = 0
        self.diverged: Optional[str] = None
        self.wants_instructions = instrument
        # memory-operand monitoring backs lazy page injection (ST) and
        # shared-memory order enforcement (MT)
        self.wants_memory = instrument
        self.replayed_instructions = 0
        self.monitored_accesses = 0
        self.uncaptured_accesses = 0
        #: Per-thread remaining region budget (divergence detection).
        self._remaining: Dict[int, int] = {
            record.tid: record.region_icount for record in pinball.threads
        }
        self._captured_pages = frozenset(
            addr >> 12 for addr in pinball.pages)

    def on_instruction(self, machine, thread, pc, insn) -> None:
        self.replayed_instructions += 1
        remaining = self._remaining.get(thread.tid)
        if remaining is not None:
            if remaining <= 0 and self.diverged is None:
                self.diverged = (
                    "thread %d ran past its recorded region length"
                    % thread.tid)
                machine.request_stop("replay divergence")
            self._remaining[thread.tid] = remaining - 1

    def on_memory_read(self, machine, thread, addr, size) -> None:
        # page-injection monitoring: accesses outside the captured image
        # are counted (they are legitimate for pages the region itself
        # maps via mmap/brk, so they are noted rather than fatal)
        self.monitored_accesses += 1
        if (addr >> 12) not in self._captured_pages:
            self.uncaptured_accesses += 1

    def on_memory_write(self, machine, thread, addr, size) -> None:
        self.monitored_accesses += 1
        if (addr >> 12) not in self._captured_pages:
            self.uncaptured_accesses += 1

    def on_syscall_before(self, machine, thread, number):
        queue = self._queues.get(thread.tid)
        if not queue:
            self.diverged = (
                "thread %d executed an unrecorded syscall %d"
                % (thread.tid, number)
            )
            machine.request_stop("replay divergence")
            return True
        record = queue[0]
        if record.number != number:
            self.diverged = (
                "thread %d syscall %d does not match recorded %d"
                % (thread.tid, number, record.number)
            )
            machine.request_stop("replay divergence")
            return True
        queue.pop(0)
        if number == NR.CLONE:
            # clone must actually run so the thread exists; determinism
            # holds because tid assignment is sequential.
            return None
        if number in (NR.EXIT, NR.EXIT_GROUP):
            # exits must actually run so threads die.
            return None
        # Inject: set the result register and replay memory effects.
        thread.regs.gpr[0] = record.result & ((1 << 64) - 1)
        for addr, data in record.writes:
            machine.mem.write(addr, data)
        self.injected += 1
        return True


@dataclass
class ReplayResult:
    """Outcome of a pinball replay."""

    machine: Machine
    status: ExitStatus
    injection: bool
    #: Instructions executed per (recorded) thread during replay.
    thread_icounts: Dict[int, int] = field(default_factory=dict)
    #: Total instructions executed during the replayed region.
    total_icount: int = 0
    injected_syscalls: int = 0
    diverged: Optional[str] = None

    @property
    def matches_recording(self) -> bool:
        """True when per-thread icounts equal the recorded counts."""
        return self.diverged is None


def _reconstruct(pinball: Pinball, seed: int,
                 fs: Optional[FileSystem]) -> Machine:
    """Build a machine in the pinball's captured start state."""
    machine = Machine(seed=seed, fs=fs)
    for addr, (prot, data) in pinball.pages.items():
        machine.mem.map(addr, len(data), prot, data=data)
    machine.kernel.set_brk(pinball.brk_start, pinball.brk_end)
    for record in sorted(pinball.threads, key=lambda r: r.tid):
        machine.create_thread(regs=record.regs, tid=record.tid)
    if pinball.next_tid:
        machine._next_tid = max(machine._next_tid, pinball.next_tid)
    return machine


def replay(pinball: Pinball, injection: bool = True, seed: int = 0,
           fs: Optional[FileSystem] = None,
           max_instructions: Optional[int] = None) -> ReplayResult:
    """Replay *pinball*; constrained when ``injection`` is true.

    A constrained replay stops exactly at the recorded region length and
    reports whether per-thread instruction counts match the recording.
    An injection-less replay (``injection=False``) free-runs for up to
    ``max_instructions`` (default: 4x the recorded region) and reports
    whatever happened — including SIGSEGV-style deaths, which is its
    purpose as an ELFie-debugging aid.
    """
    machine = _reconstruct(pinball, seed=seed, fs=fs)
    start_icounts = {t.tid: machine.threads[t.tid].icount
                     for t in pinball.threads}

    tool: Optional[_InjectionTool] = None
    if injection:
        for record in pinball.threads:
            if record.blocked:
                thread = machine.threads[record.tid]
                thread.blocked = True
                thread.futex_addr = record.futex_addr
        tool = _InjectionTool(pinball)
        machine.attach(tool)
        machine.scheduler.replay(pinball.schedule)
        # The schedule's quanta sum to every instruction executed in the
        # window, including those of threads created inside the region.
        budget = sum(s.quantum for s in pinball.schedule)
        if budget == 0:
            budget = pinball.region_icount
    else:
        budget = max_instructions
        if budget is None:
            budget = 4 * max(pinball.region_icount, 1)

    obs = hooks.OBS
    with obs.span("replay", "pinplay", pinball=pinball.name,
                  injection=injection):
        status = machine.run(max_instructions=budget)

    if tool is not None:
        machine.detach(tool)

    thread_icounts = {
        record.tid: machine.threads[record.tid].icount - start_icounts[record.tid]
        for record in pinball.threads
    }
    diverged = tool.diverged if tool is not None else None
    if injection and diverged is None:
        for record in pinball.threads:
            if thread_icounts[record.tid] != record.region_icount:
                diverged = (
                    "thread %d executed %d instructions, recorded %d"
                    % (record.tid, thread_icounts[record.tid],
                       record.region_icount)
                )
                break

    if obs.enabled:
        obs.count("replay.runs")
        if tool is not None:
            obs.count("replay.injected_syscalls", tool.injected)
        if diverged:
            obs.count("replay.divergences")
            obs.instant("replay.divergence", "pinplay",
                        pinball=pinball.name, detail=diverged)

    return ReplayResult(
        machine=machine,
        status=status,
        injection=injection,
        thread_icounts=thread_icounts,
        total_icount=sum(thread_icounts.values()),
        injected_syscalls=tool.injected if tool else 0,
        diverged=diverged,
    )
