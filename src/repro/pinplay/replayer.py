"""Constrained replay of pinballs.

Replay reconstructs the captured machine state (memory image, per-thread
registers, heap break, open file descriptors, blocked threads and their
futex wait-queue order), then re-executes the region with:

- **system-call injection**: system calls are skipped and their recorded
  register results and memory side-effects are injected instead.
  Kernel-state-changing calls (``clone``, exits, futex, memory
  management, PMU arming) are the exception — they must really execute
  so threads exist/die/block/wake, mappings appear, and traps fire;
  their native results are checked against the recorded results, which
  is itself a divergence detector.
- **thread-order enforcement**: the scheduler consumes the recorded
  slice log, reproducing the captured interleaving.

With ``injection=False`` (the paper's new ``-replay:injection 0``
switch) neither mechanism is applied: system calls re-execute natively
and the scheduler free-runs — mimicking an ELFie execution while still
under the replay harness, which the paper added for debugging ELFie
failures.

Divergence is reported as a structured :class:`DivergenceInfo` (kind,
thread, pc, icount) rather than a bare string, so the verifier and the
CLI can localize and fail on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.machine.kernel import NR, Listener, ShmSegment
from repro.machine.machine import ExitStatus, Machine
from repro.machine.tool import Tool
from repro.machine.vfs import Channel, FileSystem, OpenFile, VfsError
from repro.observe import hooks
from repro.pinplay.pinball import Pinball, SyscallRecord

MASK64 = (1 << 64) - 1


class ReplayDivergence(Exception):
    """The replayed execution no longer matches the recorded log."""


@dataclass(frozen=True)
class DivergenceInfo:
    """Where and how a replay first left the recorded execution.

    ``icount`` is region-relative (threads reconstructed from a pinball
    start counting at zero).  ``kind`` is one of:

    ``budget-overrun``
        A thread tried to execute past its recorded region length.
    ``syscall-unrecorded``
        A thread executed a syscall with no recorded counterpart.
    ``syscall-mismatch``
        The syscall number differs from the recorded one.
    ``syscall-result``
        A natively re-executed syscall returned a different result.
    ``icount-mismatch``
        Region ended with per-thread instruction counts off the record.
    """

    kind: str
    tid: int
    pc: int
    icount: int
    detail: str = ""

    def __str__(self) -> str:
        return "%s: tid %d at pc 0x%x, icount %d%s" % (
            self.kind, self.tid, self.pc, self.icount,
            " (%s)" % self.detail if self.detail else "")


class _InjectionTool(Tool):
    """Skips system calls and injects their recorded effects.

    Like PinPlay's replayer, the tool instruments every instruction
    (region-length accounting) and — for multi-threaded pinballs —
    every memory operand (shared-memory order bookkeeping).  This
    dynamic instrumentation is where constrained replay's run-time
    overhead over a native run comes from (Table I); pass
    ``instrument=False`` when a simulator provides its own
    instrumentation (the Sniper + PinPlay integration).  Region-budget
    enforcement does not depend on the flag: it rides the per-thread
    ``icount_limit`` the CPU enforces exactly on both dispatch paths.
    """

    wants_instructions = True
    wants_memory = False

    #: Syscalls that must really execute during constrained replay:
    #: they change kernel/machine state that injection cannot fake
    #: (thread creation and death, futex block/wake, address-space
    #: changes, heap growth, PMU trap arming).  Their native results
    #: are compared against the recorded results afterwards.
    NATIVE_SYSCALLS = frozenset({
        NR.CLONE, NR.EXIT, NR.EXIT_GROUP, NR.FUTEX,
        NR.MMAP, NR.MUNMAP, NR.MPROTECT, NR.BRK,
        NR.PERF_EVENT_OPEN,
    })

    def __init__(self, pinball: Pinball, instrument: bool = True) -> None:
        self._queues: Dict[int, List[SyscallRecord]] = {}
        for record in pinball.syscalls:
            self._queues.setdefault(record.tid, []).append(record)
        self.injected = 0
        self.native_syscalls = 0
        self.diverged: Optional[DivergenceInfo] = None
        self.wants_instructions = instrument
        # memory-operand monitoring backs lazy page injection (ST) and
        # shared-memory order enforcement (MT)
        self.wants_memory = instrument
        self.replayed_instructions = 0
        self.monitored_accesses = 0
        self.uncaptured_accesses = 0
        self._pending: Dict[int, SyscallRecord] = {}
        self._captured_pages = frozenset(
            addr >> 12 for addr in pinball.pages)

    def _diverge(self, machine, thread, kind: str, detail: str = "") -> None:
        if self.diverged is not None:
            return
        self.diverged = DivergenceInfo(
            kind=kind, tid=thread.tid, pc=thread.regs.rip,
            icount=thread.icount, detail=detail)
        machine.request_stop("replay divergence")

    def on_instruction(self, machine, thread, pc, insn) -> None:
        self.replayed_instructions += 1

    def on_region_limit(self, machine, thread) -> None:
        # The CPU stopped the thread exactly at its recorded region
        # length and is being asked to run it further: control flow has
        # left the recording (a faithful replay's schedule never
        # schedules a thread past its budget).
        self._diverge(
            machine, thread, "budget-overrun",
            "thread %d scheduled past its recorded region length (%d)"
            % (thread.tid, thread.icount))

    def on_memory_read(self, machine, thread, addr, size) -> None:
        # page-injection monitoring: accesses outside the captured image
        # are counted (they are legitimate for pages the region itself
        # maps via mmap/brk, so they are noted rather than fatal)
        self.monitored_accesses += 1
        if (addr >> 12) not in self._captured_pages:
            self.uncaptured_accesses += 1

    def on_memory_write(self, machine, thread, addr, size) -> None:
        self.monitored_accesses += 1
        if (addr >> 12) not in self._captured_pages:
            self.uncaptured_accesses += 1

    def on_syscall_before(self, machine, thread, number):
        queue = self._queues.get(thread.tid)
        if not queue:
            self._diverge(
                machine, thread, "syscall-unrecorded",
                "thread %d executed unrecorded syscall %d"
                % (thread.tid, number))
            return True
        record = queue[0]
        if record.number != number:
            self._diverge(
                machine, thread, "syscall-mismatch",
                "thread %d executed syscall %d, recorded %d"
                % (thread.tid, number, record.number))
            return True
        queue.pop(0)
        if record.native or number in self.NATIVE_SYSCALLS:
            # Must really run; on_syscall_after checks the result.  The
            # per-record flag covers calls whose nativeness depends on
            # the descriptor (read/write/close/dup on channel ends);
            # the static set covers pinballs from older recordings.
            self._pending[thread.tid] = record
            self.native_syscalls += 1
            return None
        # Inject: set the result register and replay memory effects.
        thread.regs.gpr[0] = record.result & MASK64
        for addr, data in record.writes:
            machine.mem.write(addr, data)
        self.injected += 1
        return True

    def on_syscall_after(self, machine, thread, number, result) -> None:
        record = self._pending.pop(thread.tid, None)
        if record is None:
            return
        if (result & MASK64) != (record.result & MASK64):
            self._diverge(
                machine, thread, "syscall-result",
                "syscall %d returned %d, recorded %d"
                % (number, result, record.result))


@dataclass
class ReplayResult:
    """Outcome of a pinball replay."""

    machine: Machine
    status: ExitStatus
    injection: bool
    #: Instructions executed per (recorded) thread during replay.
    thread_icounts: Dict[int, int] = field(default_factory=dict)
    #: Total instructions executed during the replayed region.
    total_icount: int = 0
    injected_syscalls: int = 0
    diverged: Optional[DivergenceInfo] = None

    @property
    def matches_recording(self) -> bool:
        """True when per-thread icounts equal the recorded counts."""
        return self.diverged is None


def _reconstruct(pinball: Pinball, seed: int,
                 fs: Optional[FileSystem],
                 restore_blocked: bool = False) -> Machine:
    """Build a machine in the pinball's captured start state.

    File descriptors open at region start are restored eagerly — at
    their recorded offsets — before anything executes, so the first
    replayed syscall (which may be a ``read``) sees correct kernel
    state.  With ``restore_blocked`` the captured blocked threads are
    parked on their futexes in the recorded wake order (constrained
    replay); without it they free-run, mimicking an ELFie start.
    """
    machine = Machine(seed=seed, fs=fs)
    kernel = machine.kernel
    for addr, (prot, data) in pinball.pages.items():
        machine.mem.map(addr, len(data), prot, data=data)
    kernel.set_brk(pinball.brk_start, pinball.brk_end)
    for record in sorted(pinball.threads, key=lambda r: r.tid):
        thread = machine.create_thread(regs=record.regs, tid=record.tid)
        thread.sigmask = record.sigmask
        thread.pending = record.pending
        if record.pmu_remaining is not None:
            # Re-arm the trap that was pending at region start; replay
            # icounts restart at zero, so the recorded remaining
            # distance is the new absolute trap point.
            thread.pmu_trap_at = record.pmu_remaining
            thread.pmu_handler = record.pmu_handler
    if pinball.next_tid:
        machine._next_tid = max(machine._next_tid, pinball.next_tid)

    # Signal and IPC kernel state captured at region start.  The
    # recorded channel refcounts are restored verbatim; channel-backed
    # descriptors are installed below without re-accounting.
    kernel.sigactions = dict(pinball.sigactions)
    kernel.process_pending = pinball.process_pending
    channels: Dict[int, Channel] = {}
    for cid, chan in pinball.channels.items():
        channels[cid] = Channel(
            cid=cid, capacity=chan["capacity"],
            data=bytearray(bytes.fromhex(chan.get("data", ""))),
            readers=chan.get("readers", 0),
            writers=chan.get("writers", 0))
    kernel.channels = channels
    kernel._next_channel_id = max(pinball.next_channel_id,
                                  max(channels, default=0) + 1)
    for port, listener in pinball.listeners.items():
        kernel._listeners[port] = Listener(
            port=port, backlog=listener["backlog"],
            queue=[(rc, wc) for rc, wc in listener.get("queue", [])],
            wait_cid=listener.get("wait_cid", 0))
    for shmid, seg in pinball.shm_segments.items():
        kernel.shm_segments[shmid] = ShmSegment(
            shmid=shmid, key=seg["key"], size=seg["size"],
            data=bytearray(bytes.fromhex(seg.get("data", ""))),
            attached_at=seg.get("attached_at"),
            attached_len=seg.get("attached_len", 0))
    kernel._next_shmid = max(pinball.next_shmid,
                             max(kernel.shm_segments, default=0) + 1)

    shared_endpoints: Dict[tuple, OpenFile] = {}
    for open_file in pinball.open_files:
        if open_file.kind != "file":
            # Dup'ed endpoint descriptors share one description; key on
            # the endpoint identity so dups restore as dups.
            key = (open_file.kind, open_file.read_cid,
                   open_file.write_cid, open_file.bound_port)
            endpoint = shared_endpoints.get(key)
            if endpoint is None:
                endpoint = OpenFile(
                    path=open_file.path, flags=open_file.flags,
                    kind=open_file.kind,
                    read_ch=(channels.get(open_file.read_cid)
                             if open_file.read_cid is not None else None),
                    write_ch=(channels.get(open_file.write_cid)
                              if open_file.write_cid is not None else None),
                    bound_port=open_file.bound_port)
                shared_endpoints[key] = endpoint
            kernel.fdt.restore_unaccounted(open_file.fd, endpoint)
            continue
        try:
            kernel.fdt.restore(
                open_file.fd, open_file.path, open_file.flags,
                open_file.offset)
        except VfsError:
            # File absent from the replay filesystem: constrained
            # replay injects its reads anyway; injection-less replay
            # will (correctly) observe EBADF like a bare ELFie would.
            pass
    if restore_blocked:
        waiters = kernel._futex_waiters
        for addr, tids in pinball.futex_waiters.items():
            queue = [tid for tid in tids if tid in machine.threads]
            if queue:
                waiters[addr] = queue
        channel_waiters = kernel._channel_waiters
        for cid, tids in pinball.channel_waiters.items():
            queue = [tid for tid in tids if tid in machine.threads]
            if queue:
                channel_waiters[cid] = queue
        for record in pinball.threads:
            if not record.blocked:
                continue
            thread = machine.threads[record.tid]
            thread.blocked = True
            thread.futex_addr = record.futex_addr
            thread.wait_channel = record.wait_channel
            if record.futex_addr is not None:
                # Older pinballs lack the recorded waiter order; fall
                # back to tid order (threads are created tid-sorted).
                queue = waiters.setdefault(record.futex_addr, [])
                if record.tid not in queue:
                    queue.append(record.tid)
            if record.wait_channel is not None:
                queue = channel_waiters.setdefault(record.wait_channel, [])
                if record.tid not in queue:
                    queue.append(record.tid)
    return machine


class ReplaySession:
    """A replay that can be advanced in instruction-count steps.

    This is the verifier's replay cursor: ``step(target)`` runs until
    ``machine.executed_total`` reaches *target* (clamped to the region
    budget), preserving recorded-slice remainders across steps, so a
    replay advanced epoch by epoch retires exactly the same interleaved
    instruction sequence as :func:`replay` in one shot.  ``result()``
    finalizes and returns the :class:`ReplayResult`.
    """

    def __init__(self, pinball: Pinball, injection: bool = True,
                 seed: int = 0, fs: Optional[FileSystem] = None,
                 max_instructions: Optional[int] = None,
                 instrument: bool = True) -> None:
        self.pinball = pinball
        self.injection = injection
        self.machine = _reconstruct(pinball, seed=seed, fs=fs,
                                    restore_blocked=injection)
        self.tool: Optional[_InjectionTool] = None
        if injection:
            self.tool = _InjectionTool(pinball, instrument=instrument)
            self.machine.attach(self.tool)
            self.machine.scheduler.replay(pinball.schedule)
            # Exact per-thread budgets: the CPU spills mid-block and
            # reports the boundary precisely (satellite of PR 4's
            # superblock fast path — no overshoot to block end).
            for record in pinball.threads:
                self.machine.threads[record.tid].icount_limit = (
                    record.region_icount)
            # The schedule's quanta sum to every instruction executed in
            # the window, including those of threads created inside the
            # region.
            budget = sum(s.quantum for s in pinball.schedule)
            if budget == 0:
                budget = pinball.region_icount
        else:
            budget = max_instructions
            if budget is None:
                budget = 4 * max(pinball.region_icount, 1)
        self.budget = budget
        self.status: Optional[ExitStatus] = None
        self._finished = False

    @property
    def executed(self) -> int:
        """Instructions retired so far (region-relative)."""
        return self.machine.executed_total

    @property
    def done(self) -> bool:
        return (self.machine.exit_status is not None
                or self.executed >= self.budget
                or (self.tool is not None
                    and self.tool.diverged is not None))

    def step(self, target: int) -> ExitStatus:
        """Advance until *target* total instructions (or the budget)."""
        self.status = self.machine.run(
            max_instructions=min(target, self.budget))
        return self.status

    def run(self) -> ExitStatus:
        """Run to the end of the region budget."""
        return self.step(self.budget)

    def result(self) -> ReplayResult:
        """Detach instrumentation and summarize the replay."""
        tool = self.tool
        if not self._finished:
            self._finished = True
            if tool is not None:
                self.machine.detach(tool)
        machine = self.machine
        thread_icounts = {
            record.tid: machine.threads[record.tid].icount
            for record in self.pinball.threads
        }
        diverged = tool.diverged if tool is not None else None
        if self.injection and diverged is None:
            for record in self.pinball.threads:
                if thread_icounts[record.tid] != record.region_icount:
                    thread = machine.threads[record.tid]
                    diverged = DivergenceInfo(
                        kind="icount-mismatch", tid=record.tid,
                        pc=thread.regs.rip, icount=thread.icount,
                        detail="executed %d instructions, recorded %d"
                        % (thread_icounts[record.tid],
                           record.region_icount))
                    break
        status = self.status
        if status is None:
            status = ExitStatus(kind="stopped", detail="not run")
        return ReplayResult(
            machine=machine,
            status=status,
            injection=self.injection,
            thread_icounts=thread_icounts,
            total_icount=sum(thread_icounts.values()),
            injected_syscalls=tool.injected if tool else 0,
            diverged=diverged,
        )


def replay(pinball: Pinball, injection: bool = True, seed: int = 0,
           fs: Optional[FileSystem] = None,
           max_instructions: Optional[int] = None,
           instrument: bool = True) -> ReplayResult:
    """Replay *pinball*; constrained when ``injection`` is true.

    A constrained replay stops exactly at the recorded region length and
    reports whether per-thread instruction counts match the recording.
    An injection-less replay (``injection=False``) free-runs for up to
    ``max_instructions`` (default: 4x the recorded region) and reports
    whatever happened — including SIGSEGV-style deaths, which is its
    purpose as an ELFie-debugging aid.
    """
    session = ReplaySession(pinball, injection=injection, seed=seed, fs=fs,
                            max_instructions=max_instructions,
                            instrument=instrument)
    obs = hooks.OBS
    with obs.span("replay", "pinplay", pinball=pinball.name,
                  injection=injection):
        session.run()
    result = session.result()

    if obs.enabled:
        obs.count("replay.runs")
        if session.tool is not None:
            obs.count("replay.injected_syscalls", session.tool.injected)
        if result.diverged:
            obs.count("replay.divergences")
            obs.instant("replay.divergence", "pinplay",
                        pinball=pinball.name, kind=result.diverged.kind,
                        tid=result.diverged.tid, pc=result.diverged.pc,
                        icount=result.diverged.icount,
                        detail=str(result.diverged))

    return result
