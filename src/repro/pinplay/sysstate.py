"""The ``pinball_sysstate`` tool: extract OS state for ELFie re-execution.

An ELFie re-executes system calls natively, so file-related calls need
the files to exist (paper §II-C2).  This tool analyzes a pinball's
system-call log and reconstructs:

- **proxy files** for files opened *inside* the region, under their real
  names, populated solely from the region's read() results,
- **FD_n proxy files** for files that were already open at region start
  (referenced only by descriptor),
- **BRK.log** with the first and last ``brk()`` results in the region,
  which a custom ``elfie_on_start`` callback feeds back through
  ``prctl(PR_SET_MM)`` to restore the heap layout.

The result is materialized as a *sysstate working directory* in a
:class:`~repro.machine.vfs.FileSystem`; running the ELFie chrooted in
that directory (or with it as the cwd) makes the region's file syscalls
succeed with the captured data.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.machine.kernel import NR
from repro.machine.vfs import FileSystem
from repro.pinplay.pinball import Pinball


@dataclass
class ProxyFile:
    """A file to materialize in the sysstate directory."""

    name: str                 # "FD_5" or the real path
    data: bytearray = field(default_factory=bytearray)
    #: Descriptor to restore via dup2 at ELFie start (FD_n files only).
    restore_fd: Optional[int] = None
    #: File offset the descriptor had at region start; the ELFie startup
    #: code re-applies it with lseek right after the dup2, *before* the
    #: first replayed syscall can read, so proxy data lives at its real
    #: file offsets instead of a lazily-defined virtual origin.
    start_offset: int = 0

    def write_at(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if end > len(self.data):
            self.data.extend(b"\x00" * (end - len(self.data)))
        self.data[offset:end] = data


@dataclass
class SysState:
    """Reconstructed OS state for one pinball."""

    pinball_name: str
    files: List[ProxyFile] = field(default_factory=list)
    first_brk: int = 0
    last_brk: int = 0

    @property
    def fd_files(self) -> List[ProxyFile]:
        """Proxies for descriptors open before the region (FD_n)."""
        return [f for f in self.files if f.restore_fd is not None]

    @property
    def named_files(self) -> List[ProxyFile]:
        """Proxies for files opened inside the region."""
        return [f for f in self.files if f.restore_fd is None]

    def brk_log(self) -> str:
        """The BRK.log contents (first/last brk results in the region)."""
        return "first_brk 0x%x\nlast_brk 0x%x\n" % (self.first_brk,
                                                    self.last_brk)

    def write_to(self, fs: FileSystem, workdir: str = "/sysstate") -> str:
        """Materialize the sysstate directory into *fs*.

        FD_n proxies and BRK.log land inside *workdir*.  Named files
        opened with absolute paths are copied to their rightful absolute
        location *and* into the workdir (so a chrooted run finds them
        either way).  Returns the workdir path.
        """
        for proxy in self.files:
            if proxy.restore_fd is not None:
                fs.create(posixpath.join(workdir, proxy.name), bytes(proxy.data))
            else:
                if proxy.name.startswith("/"):
                    fs.create(proxy.name, bytes(proxy.data))
                    fs.create(workdir + proxy.name, bytes(proxy.data))
                else:
                    fs.create(posixpath.join(workdir, proxy.name),
                              bytes(proxy.data))
        fs.create(posixpath.join(workdir, "BRK.log"), self.brk_log().encode())
        return workdir


def extract_sysstate(pinball: Pinball) -> SysState:
    """Run the replay-based analysis over a pinball's syscall log.

    Tracks each descriptor's offset through open/read/lseek/dup/dup2/
    close and places every read() result at the offset it was consumed
    from, so a native re-execution returns identical data.

    For descriptors open before the region the pinball's
    ``open_files`` records supply the *real* file offset at region
    start; the FD_n proxy stores data at those real offsets and carries
    ``start_offset`` so the ELFie startup code can lseek the restored
    descriptor into position before the first read.  SEEK_SET to
    absolute pre-region positions therefore round-trips correctly.
    Pinballs from older recordings lack the records; for those the old
    virtual-origin behaviour (first region read defines offset 0)
    applies.
    """
    state = SysState(pinball_name=pinball.name)
    # descriptor -> (ProxyFile, current offset), per thread view
    # is unnecessary: descriptors are process-wide.
    open_files: Dict[int, Tuple[ProxyFile, int]] = {}
    proxies_by_identity: Dict[str, ProxyFile] = {}
    recorded = {record.fd: record for record in pinball.open_files}
    saw_brk = False

    def proxy_for_fd(fd: int) -> Tuple[ProxyFile, int]:
        if fd in open_files:
            return open_files[fd]
        # first reference to a pre-region descriptor
        name = "FD_%d" % fd
        proxy = proxies_by_identity.get(name)
        if proxy is None:
            start = recorded[fd].offset if fd in recorded else 0
            proxy = ProxyFile(name=name, restore_fd=fd, start_offset=start)
            proxies_by_identity[name] = proxy
            state.files.append(proxy)
        open_files[fd] = (proxy, proxy.start_offset)
        return open_files[fd]

    for record in pinball.syscalls:
        number = record.number
        result = _signed(record.result)
        if number == NR.OPEN:
            if result < 0:
                continue
            name = record.path or "FD_%d" % result
            proxy = proxies_by_identity.get(name)
            if proxy is None:
                proxy = ProxyFile(name=name)
                proxies_by_identity[name] = proxy
                state.files.append(proxy)
            open_files[result] = (proxy, 0)
        elif number == NR.READ:
            fd = record.args[0]
            if fd <= 2 or result <= 0:
                continue
            proxy, offset = proxy_for_fd(fd)
            data = b"".join(chunk for _, chunk in record.writes)
            proxy.write_at(offset, data[:result])
            open_files[fd] = (proxy, offset + result)
        elif number == NR.LSEEK:
            fd = record.args[0]
            if fd <= 2 or result < 0:
                continue
            proxy, _offset = proxy_for_fd(fd)
            open_files[fd] = (proxy, result)
        elif number == NR.CLOSE:
            open_files.pop(record.args[0], None)
        elif number == NR.DUP:
            if result >= 0 and record.args[0] in open_files:
                open_files[result] = open_files[record.args[0]]
        elif number == NR.DUP2:
            if result >= 0 and record.args[0] in open_files:
                open_files[record.args[1]] = open_files[record.args[0]]
        elif number == NR.BRK:
            if not saw_brk:
                state.first_brk = record.result
                saw_brk = True
            state.last_brk = record.result
    if not saw_brk:
        state.first_brk = pinball.brk_end
        state.last_brk = pinball.brk_end
    return state


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value
