"""The pinball on-disk format.

A pinball is a directory of files sharing a basename (paper §I):

``<name>.text``
    The initial memory image: every captured page with its protection
    and contents at region start.  Binary format: a magic header then
    one record per page.
``<name>.<tid>.reg``
    Per-thread architectural registers at region start, plus the
    register results of every system call the thread performs inside
    the region (injected during constrained replay).
``<name>.sel``
    System-call side-effect log: the user-memory writes each syscall
    performed, with enough argument context for sysstate analysis.
``<name>.race``
    Shared-memory-order log.  This reproduction records the realized
    scheduling slices, which is a *stronger* constraint than PinPlay's
    shared-memory access order; the guarantee documented in the paper
    (constrained, not totally ordered, replay) is preserved a fortiori.
``<name>.result``
    JSON metadata: region spec, per-thread instruction counts, brk
    bounds, thread blocked-states, fat flags.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.registers import RegisterFile
from repro.machine.memory import PAGE_SIZE
from repro.machine.scheduler import ScheduleSlice
from repro.pinplay.regions import RegionSpec

_TEXT_MAGIC = b"PBTX0001"
_BYTES_MAGIC = b"PBALL001"


@dataclass
class SyscallRecord:
    """One system call executed inside the captured region."""

    tid: int
    number: int
    args: Tuple[int, ...]            # rdi, rsi, rdx, r10, r8, r9 at entry
    result: int                      # rax after the call
    writes: List[Tuple[int, bytes]] = field(default_factory=list)
    #: Path string for open(2) calls (captured at log time).
    path: Optional[str] = None
    #: Whether the call mutated kernel state (channels, signal state,
    #: memory maps, ...) and must be *re-executed* during replay rather
    #: than injected.  Captured from the recording kernel so replay
    #: agrees with it per call, not per syscall number.
    native: bool = False

    def to_json(self) -> dict:
        return {
            "tid": self.tid,
            "number": self.number,
            "args": list(self.args),
            "result": self.result,
            "writes": [[addr, data.hex()] for addr, data in self.writes],
            "path": self.path,
            "native": self.native,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SyscallRecord":
        return cls(
            tid=data["tid"],
            number=data["number"],
            args=tuple(data["args"]),
            result=data["result"],
            writes=[(addr, bytes.fromhex(hexdata))
                    for addr, hexdata in data["writes"]],
            path=data.get("path"),
            native=data.get("native", False),
        )


@dataclass
class OpenFileRecord:
    """One file descriptor that was open when the region started.

    Captured so replay (and the sysstate tool) can restore the
    descriptor — at its recorded file offset — *before* the first
    replayed syscall, instead of lazily discovering it on first access.
    """

    fd: int
    path: str
    flags: int = 0
    offset: int = 0
    #: "file" descriptors restore from the file system; "pipe"/"socket"
    #: endpoints restore against the pinball's channel table instead.
    kind: str = "file"
    read_cid: Optional[int] = None
    write_cid: Optional[int] = None
    bound_port: Optional[int] = None

    def to_json(self) -> dict:
        return {"fd": self.fd, "path": self.path, "flags": self.flags,
                "offset": self.offset, "kind": self.kind,
                "read_cid": self.read_cid, "write_cid": self.write_cid,
                "bound_port": self.bound_port}

    @classmethod
    def from_json(cls, data: dict) -> "OpenFileRecord":
        return cls(fd=data["fd"], path=data["path"],
                   flags=data.get("flags", 0), offset=data.get("offset", 0),
                   kind=data.get("kind", "file"),
                   read_cid=data.get("read_cid"),
                   write_cid=data.get("write_cid"),
                   bound_port=data.get("bound_port"))


@dataclass
class ThreadRecord:
    """Per-thread capture state (one ``.reg`` file)."""

    tid: int
    regs: RegisterFile
    #: Retired instructions this thread executes inside the region.
    region_icount: int = 0
    #: Whether the thread was blocked (futex) at region start.
    blocked: bool = False
    futex_addr: Optional[int] = None
    #: Armed-but-unfired PMU trap at region start: instructions left
    #: until the trap fires, and its handler address.  Without these a
    #: trap armed before the region silently never fires during replay
    #: and execution diverges at the recorded trap point.
    pmu_remaining: Optional[int] = None
    pmu_handler: Optional[int] = None
    #: POSIX signal state at region start (blocked mask, pending set).
    sigmask: int = 0
    pending: int = 0
    #: Channel id the thread was read/write/accept-blocked on.
    wait_channel: Optional[int] = None

    def to_json(self) -> dict:
        return {
            "tid": self.tid,
            "regs": self.regs.to_dict(),
            "region_icount": self.region_icount,
            "blocked": self.blocked,
            "futex_addr": self.futex_addr,
            "pmu_remaining": self.pmu_remaining,
            "pmu_handler": self.pmu_handler,
            "sigmask": self.sigmask,
            "pending": self.pending,
            "wait_channel": self.wait_channel,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ThreadRecord":
        return cls(
            tid=data["tid"],
            regs=RegisterFile.from_dict(data["regs"]),
            region_icount=data["region_icount"],
            blocked=data["blocked"],
            futex_addr=data.get("futex_addr"),
            pmu_remaining=data.get("pmu_remaining"),
            pmu_handler=data.get("pmu_handler"),
            sigmask=data.get("sigmask", 0),
            pending=data.get("pending", 0),
            wait_channel=data.get("wait_channel"),
        )


@dataclass
class Pinball:
    """An in-memory pinball; save/load round-trips the directory format."""

    name: str
    region: RegionSpec
    #: page base address -> (protection bits, page bytes)
    pages: Dict[int, Tuple[int, bytes]]
    threads: List[ThreadRecord]
    syscalls: List[SyscallRecord]
    schedule: List[ScheduleSlice]
    brk_start: int = 0
    brk_end: int = 0
    fat: bool = True
    whole_image: bool = True
    pages_early: bool = True
    #: Whole-program icount of the source run (for weights/coverage).
    program_icount: int = 0
    #: The source machine's thread-id counter at region start, so that
    #: clone() inside the region assigns identical tids during replay.
    next_tid: int = 0
    #: Non-console file descriptors open at region start (fd, path,
    #: flags, offset) — restored eagerly before the first replayed
    #: syscall.  Empty for pinballs from older recordings.
    open_files: List[OpenFileRecord] = field(default_factory=list)
    #: Futex wait-queue order at region start: futex address -> waiter
    #: tids in wake order.  Lets replay re-execute FUTEX_WAKE natively
    #: with the recorded wake order.
    futex_waiters: Dict[int, List[int]] = field(default_factory=dict)
    #: Kernel channel table at region start: cid -> {"capacity", "data"
    #: (hex), "readers", "writers"}.  Restored so in-region pipe/socket
    #: traffic re-executes against the recorded buffer contents and
    #: descriptor refcounts.
    channels: Dict[int, dict] = field(default_factory=dict)
    #: Channel wait-queue order at region start: cid -> waiter tids.
    channel_waiters: Dict[int, List[int]] = field(default_factory=dict)
    #: Listening sockets at region start: port -> {"backlog",
    #: "wait_cid", "queue": [[read_cid, write_cid], ...]}.
    listeners: Dict[int, dict] = field(default_factory=dict)
    #: Installed signal dispositions: signum -> [handler, sa_mask].
    sigactions: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: Process-directed pending-signal bitmask at region start.
    process_pending: int = 0
    #: SysV shared-memory table: shmid -> {"key", "size", "data" (hex),
    #: "attached_at", "attached_len"}.
    shm_segments: Dict[int, dict] = field(default_factory=dict)
    #: Kernel id counters, so in-region channel/segment creation assigns
    #: the recorded ids during replay.
    next_channel_id: int = 1
    next_shmid: int = 1

    # -- derived -----------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def region_icount(self) -> int:
        """Total instructions in the region across threads."""
        return sum(t.region_icount for t in self.threads)

    def thread(self, tid: int) -> ThreadRecord:
        for record in self.threads:
            if record.tid == tid:
                return record
        raise KeyError("no thread %d in pinball" % tid)

    def syscalls_for(self, tid: int) -> List[SyscallRecord]:
        return [record for record in self.syscalls if record.tid == tid]

    def memory_bytes(self) -> int:
        return len(self.pages) * PAGE_SIZE

    def try_stack_range(self) -> Optional[Tuple[int, int]]:
        """:meth:`stack_range`, or None when the stack page was not
        captured (possible for lazy pinballs whose region never touches
        the stack)."""
        try:
            return self.stack_range()
        except ValueError:
            return None

    def stack_range(self) -> Tuple[int, int]:
        """The coalesced page run containing thread 0's rsp.

        This identifies the program-stack pages that ``pinball2elf``
        must mark non-allocatable (stack-collision fix).
        """
        rsp_page = self.threads[0].regs.rsp & ~(PAGE_SIZE - 1)
        if rsp_page not in self.pages:
            raise ValueError("thread 0 rsp 0x%x not in captured pages"
                             % self.threads[0].regs.rsp)
        start = rsp_page
        while start - PAGE_SIZE in self.pages:
            start -= PAGE_SIZE
        end = rsp_page + PAGE_SIZE
        while end in self.pages:
            end += PAGE_SIZE
        return start, end

    # -- persistence ----------------------------------------------------------

    def _text_payload(self) -> bytes:
        """The ``.text`` memory-image file contents."""
        out = [_TEXT_MAGIC, struct.pack("<Q", len(self.pages))]
        for addr in sorted(self.pages):
            prot, data = self.pages[addr]
            if len(data) != PAGE_SIZE:
                raise ValueError("page 0x%x is not %d bytes" % (addr, PAGE_SIZE))
            out.append(struct.pack("<QI", addr, prot))
            out.append(data)
        return b"".join(out)

    @staticmethod
    def _decode_text(data: bytes) -> Dict[int, Tuple[int, bytes]]:
        if data[:8] != _TEXT_MAGIC:
            raise ValueError("bad pinball .text magic")
        (count,) = struct.unpack("<Q", data[8:16])
        pages: Dict[int, Tuple[int, bytes]] = {}
        offset = 16
        for _ in range(count):
            addr, prot = struct.unpack("<QI", data[offset:offset + 12])
            offset += 12
            pages[addr] = (prot, data[offset:offset + PAGE_SIZE])
            offset += PAGE_SIZE
        return pages

    def _result_dict(self) -> dict:
        """The ``.result`` metadata file contents."""
        return {
            "name": self.name,
            "region": {
                "start": self.region.start,
                "length": self.region.length,
                "warmup": self.region.warmup,
                "name": self.region.name,
                "weight": self.region.weight,
            },
            "tids": [record.tid for record in self.threads],
            "brk_start": self.brk_start,
            "brk_end": self.brk_end,
            "fat": self.fat,
            "whole_image": self.whole_image,
            "pages_early": self.pages_early,
            "program_icount": self.program_icount,
            "next_tid": self.next_tid,
            "open_files": [record.to_json() for record in self.open_files],
            "futex_waiters": {str(addr): tids for addr, tids
                              in self.futex_waiters.items()},
            "channels": {str(cid): chan for cid, chan
                         in self.channels.items()},
            "channel_waiters": {str(cid): tids for cid, tids
                                in self.channel_waiters.items()},
            "listeners": {str(port): listener for port, listener
                          in self.listeners.items()},
            "sigactions": {str(sig): list(act) for sig, act
                           in self.sigactions.items()},
            "process_pending": self.process_pending,
            "shm_segments": {str(shmid): seg for shmid, seg
                             in self.shm_segments.items()},
            "next_channel_id": self.next_channel_id,
            "next_shmid": self.next_shmid,
        }

    @classmethod
    def _from_parts(cls, meta: dict, pages: Dict[int, Tuple[int, bytes]],
                    threads: List["ThreadRecord"],
                    syscalls: List[SyscallRecord],
                    schedule: List[ScheduleSlice]) -> "Pinball":
        return cls(
            name=meta["name"],
            region=RegionSpec(**meta["region"]),
            pages=pages,
            threads=threads,
            syscalls=syscalls,
            schedule=schedule,
            brk_start=meta["brk_start"],
            brk_end=meta["brk_end"],
            fat=meta["fat"],
            whole_image=meta["whole_image"],
            pages_early=meta["pages_early"],
            program_icount=meta.get("program_icount", 0),
            next_tid=meta.get("next_tid", 0),
            open_files=[OpenFileRecord.from_json(item)
                        for item in meta.get("open_files", [])],
            futex_waiters={int(addr): list(tids) for addr, tids
                           in meta.get("futex_waiters", {}).items()},
            channels={int(cid): dict(chan) for cid, chan
                      in meta.get("channels", {}).items()},
            channel_waiters={int(cid): list(tids) for cid, tids
                             in meta.get("channel_waiters", {}).items()},
            listeners={int(port): dict(listener) for port, listener
                       in meta.get("listeners", {}).items()},
            sigactions={int(sig): (act[0], act[1]) for sig, act
                        in meta.get("sigactions", {}).items()},
            process_pending=meta.get("process_pending", 0),
            shm_segments={int(shmid): dict(seg) for shmid, seg
                          in meta.get("shm_segments", {}).items()},
            next_channel_id=meta.get("next_channel_id", 1),
            next_shmid=meta.get("next_shmid", 1),
        )

    def save(self, directory: str) -> str:
        """Write the pinball files under *directory*; returns the prefix."""
        os.makedirs(directory, exist_ok=True)
        prefix = os.path.join(directory, self.name)
        with open(prefix + ".text", "wb") as handle:
            handle.write(self._text_payload())
        for record in self.threads:
            with open("%s.%d.reg" % (prefix, record.tid), "w") as handle:
                json.dump(record.to_json(), handle)
        with open(prefix + ".sel", "w") as handle:
            json.dump([record.to_json() for record in self.syscalls], handle)
        with open(prefix + ".race", "w") as handle:
            json.dump([[s.tid, s.quantum] for s in self.schedule], handle)
        with open(prefix + ".result", "w") as handle:
            json.dump(self._result_dict(), handle)
        return prefix

    @classmethod
    def load(cls, directory: str, name: str) -> "Pinball":
        """Load a pinball previously written by :meth:`save`."""
        prefix = os.path.join(directory, name)
        with open(prefix + ".result") as handle:
            meta = json.load(handle)
        with open(prefix + ".text", "rb") as handle:
            pages = cls._decode_text(handle.read())
        threads = []
        for tid in meta["tids"]:
            with open("%s.%d.reg" % (prefix, tid)) as handle:
                threads.append(ThreadRecord.from_json(json.load(handle)))
        with open(prefix + ".sel") as handle:
            syscalls = [SyscallRecord.from_json(item) for item in json.load(handle)]
        with open(prefix + ".race") as handle:
            schedule = [ScheduleSlice(tid=tid, quantum=quantum)
                        for tid, quantum in json.load(handle)]
        return cls._from_parts(meta, pages, threads, syscalls, schedule)

    def save_bytes(self) -> bytes:
        """Serialize the whole pinball into one ``bytes`` blob.

        The blob packs the same five file payloads :meth:`save` writes
        (result metadata, per-thread registers, syscall side-effects,
        schedule, memory image) into a single container, so pinballs can
        travel through in-memory channels — the farm artifact store,
        sockets, message queues — without touching a directory.
        """
        meta = {
            "result": self._result_dict(),
            "threads": [record.to_json() for record in self.threads],
            "syscalls": [record.to_json() for record in self.syscalls],
            "schedule": [[s.tid, s.quantum] for s in self.schedule],
        }
        meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        return b"".join([
            _BYTES_MAGIC,
            struct.pack("<Q", len(meta_blob)),
            meta_blob,
            self._text_payload(),
        ])

    @classmethod
    def load_bytes(cls, data: bytes) -> "Pinball":
        """Reconstruct a pinball from a :meth:`save_bytes` blob."""
        if data[:8] != _BYTES_MAGIC:
            raise ValueError("bad pinball byte-container magic")
        (meta_len,) = struct.unpack("<Q", data[8:16])
        meta = json.loads(data[16:16 + meta_len].decode("utf-8"))
        pages = cls._decode_text(data[16 + meta_len:])
        return cls._from_parts(
            meta["result"],
            pages,
            [ThreadRecord.from_json(item) for item in meta["threads"]],
            [SyscallRecord.from_json(item) for item in meta["syscalls"]],
            [ScheduleSlice(tid=tid, quantum=quantum)
             for tid, quantum in meta["schedule"]],
        )
