"""ELFie startup-code generation (paper §II-B3/4, Figs. 5-7).

The startup code is real PX assembly, executed by the ELFie before any
application code:

1. **Stack remap** (Fig. 5): immediately switch off the loader-provided
   stack onto a scratch stack, ``mmap`` the parent pinball's stack range
   (whose sections are non-allocatable in the ELF, so the loader never
   mapped them), and copy the captured stack bytes from an allocatable
   staging area.
2. **Sysstate restore** (§II-C2): ``prctl(PR_SET_MM)`` the heap break
   back to the captured layout and pre-open every ``FD_n`` proxy file,
   ``dup2``-ing it onto the original descriptor number.
3. **Callbacks**: optional ``elfie_on_start`` before anything else runs
   application code.
4. **Thread creation** (Fig. 6): a clone loop starts one thread per
   captured thread; each runs its per-thread init function: optional
   ``elfie_on_thread_start`` (on a private callback stack), ``XRSTOR``
   of the extended state, restore of FS/GS bases and RFLAGS, fifteen
   ``pop``s for the GPRs, the optional ROI marker, then a
   register-free ``mov rsp, <captured rsp>; jmpabs <captured rip>``
   into the application code.

The generator reports, per thread, how many instructions execute between
the graceful-exit counter arming and the jump into application code, so
``pinball2elf`` can adjust the counter threshold to stop the ELFie at
exactly the captured region length.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.assembler import Assembler
from repro.isa.registers import GPR_NAMES, RegisterFile, XSAVE_AREA_SIZE
from repro.machine.memory import PAGE_SIZE
from repro.core.callbacks import (
    PERFLE_CALLBACK_TAIL,
    default_on_exit_source,
    default_on_start_source,
    monitor_data_source,
    monitor_source,
    perfle_exit_handler_source,
    perfle_thread_start_source,
    print_data_source,
    print_u64_source,
)
from repro.core.markers import MarkerSpec
from repro.pinplay.pinball import Pinball
from repro.pinplay.sysstate import SysState

#: GPR restore order (hardware indices): rax rcx rdx rbx rbp rsi rdi
#: r8..r15 — everything except rsp, which the thread-entry stub sets.
POP_ORDER: Tuple[int, ...] = (0, 1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)

#: Context block layout (one per thread, in the startup data area):
#: [xsave area][fs][gs][rflags][15 GPRs in POP_ORDER], padded to 320.
CTX_POP_OFFSET = XSAVE_AREA_SIZE
CTX_SIZE = 320

#: Callback scratch-stack bytes per thread.
CALLBACK_STACK_BYTES = 2048

PR_SET_MM = 35
PR_SET_MM_START_BRK = 6
PR_SET_MM_BRK = 7


def _mask_bits(mask: int) -> List[int]:
    """Signal numbers present in a pending/blocked bitmask."""
    return [bit + 1 for bit in range(64) if (mask >> bit) & 1]


def pack_context(regs: RegisterFile) -> bytes:
    """Serialize one thread's context block (without rsp/rip)."""
    parts = [regs.xsave_bytes()]
    parts.append(struct.pack("<Q", regs.fs_base))
    parts.append(struct.pack("<Q", regs.gs_base))
    parts.append(struct.pack("<Q", regs.flags.to_word()))
    for index in POP_ORDER:
        parts.append(struct.pack("<Q", regs.gpr[index]))
    blob = b"".join(parts)
    return blob + b"\x00" * (CTX_SIZE - len(blob))


@dataclass
class StartupPlan:
    """What the generator decided, for symbols and threshold math."""

    #: Instructions retired by thread i between the return of
    #: elfie_on_thread_start and the jmpabs into application code
    #: (inclusive of the jmpabs).
    tail_instructions: Dict[int, int] = field(default_factory=dict)
    #: Labels whose addresses become ELF symbols after assembly.
    symbol_labels: List[str] = field(default_factory=list)
    #: (symbol name, context label, byte offset) records for .tN.* syms.
    context_symbols: List[Tuple[str, str, int]] = field(default_factory=list)


class StartupGenerator:
    """Emits the full startup blob into an :class:`Assembler`."""

    def __init__(self, pinball: Pinball,
                 marker: Optional[MarkerSpec] = None,
                 perf_exit: bool = False,
                 perf_exit_slack: float = 1.0,
                 with_monitor: bool = False,
                 sysstate: Optional[SysState] = None,
                 user_code: Optional[str] = None,
                 user_defines: Tuple[str, ...] = (),
                 remap_stack: bool = True) -> None:
        self.remap_stack = remap_stack
        self.pinball = pinball
        self.marker = marker
        self.perf_exit = perf_exit
        self.perf_exit_slack = perf_exit_slack
        self.with_monitor = with_monitor
        self.sysstate = sysstate
        self.user_code = user_code
        self.user_defines = set(user_defines)
        self.plan = StartupPlan()

    # -- helpers -----------------------------------------------------------

    def _stack_runs(self) -> List[Tuple[int, int]]:
        """(start, length) of the pinball's stack page runs (empty when
        the stack was not captured — lazy pinballs — or when the
        stack-collision fix is disabled)."""
        if not self.remap_stack:
            return []
        stack = self.pinball.try_stack_range()
        if stack is None:
            return []
        start, end = stack
        return [(start, end - start)]

    def _thread_records(self):
        return sorted(self.pinball.threads, key=lambda r: r.tid)

    def _has_signal_state(self) -> bool:
        return bool(self.pinball.sigactions or self.pinball.process_pending
                    or any(r.sigmask or r.pending
                           for r in self.pinball.threads))

    # -- kernel IPC restore plans ------------------------------------------

    def _shm_plan(self) -> List[Tuple[int, Optional[dict]]]:
        """(shmid, segment-or-None) rows covering every id up to the
        captured next_shmid.  Gap ids are burned with a create+RMID pair
        so real segments land on their captured ids (shmget hands out
        sequential ids)."""
        segments = self.pinball.shm_segments
        if not segments and self.pinball.next_shmid <= 1:
            return []
        limit = max(max(segments, default=0), self.pinball.next_shmid - 1)
        return [(shmid, segments.get(shmid))
                for shmid in range(1, limit + 1)]

    def _shm_staging_bytes(self, segment: dict) -> bytes:
        """Content to copy into the restored segment, 8-byte padded.

        For a segment attached at capture time the live bytes are the
        captured *pages* of the attached range (the ``data`` field is
        only synchronized at shmdt); detached segments carry their
        content in ``data``.
        """
        size = segment["size"]
        attached_at = segment.get("attached_at")
        if attached_at is not None:
            out = bytearray()
            addr = attached_at
            end = attached_at + segment.get("attached_len", 0)
            while addr < end:
                page = self.pinball.pages.get(addr)
                out += page[1] if page else b"\x00" * PAGE_SIZE
                addr += PAGE_SIZE
            blob = bytes(out[:size])
        else:
            blob = bytes.fromhex(segment.get("data", ""))[:size]
        blob += b"\x00" * (size - len(blob))
        pad = (-len(blob)) % 8
        return blob + b"\x00" * pad

    def _channel_plans(self) -> List[dict]:
        """Restore plans for pipe/socket descriptors open at region
        start, derived from the captured fd table and channel buffers.

        Unaccepted listener-queue connections are not restorable from
        startup code (no descriptor references them) and are dropped;
        an in-region accept() of such a connection is beyond what a
        stand-alone ELFie reproduces.
        """
        records = [r for r in sorted(self.pinball.open_files,
                                     key=lambda r: r.fd)
                   if r.kind in ("pipe", "socket")]
        if not records:
            return []
        chdata = {cid: bytes.fromhex(chan.get("data", ""))
                  for cid, chan in self.pinball.channels.items()}
        plans: List[dict] = []
        pipes: Dict[int, dict] = {}
        pairs: Dict[Tuple[int, int], dict] = {}
        for record in records:
            if record.kind == "pipe":
                cid = (record.read_cid if record.read_cid is not None
                       else record.write_cid)
                plan = pipes.get(cid)
                if plan is None:
                    plan = {"type": "pipe", "cid": cid,
                            "read_fds": [], "write_fds": [],
                            "data": chdata.get(cid, b"")}
                    pipes[cid] = plan
                    plans.append(plan)
                side = "read_fds" if record.read_cid is not None else "write_fds"
                plan[side].append(record.fd)
            elif record.read_cid is not None:  # connected socket end
                key = (min(record.read_cid, record.write_cid),
                       max(record.read_cid, record.write_cid))
                plan = pairs.get(key)
                if plan is None:
                    # end0 reads key[0]; end1 reads key[1]
                    plan = {"type": "pair", "key": key,
                            "end0_fds": [], "end1_fds": [],
                            "data0": chdata.get(key[0], b""),
                            "data1": chdata.get(key[1], b"")}
                    pairs[key] = plan
                    plans.append(plan)
                side = "end0_fds" if record.read_cid == key[0] else "end1_fds"
                plan[side].append(record.fd)
            elif record.bound_port is not None:
                listener = self.pinball.listeners.get(record.bound_port, {})
                existing = next((p for p in plans
                                 if p["type"] == "listener"
                                 and p["port"] == record.bound_port), None)
                if existing is not None:
                    existing["fds"].append(record.fd)
                else:
                    plans.append({"type": "listener",
                                  "port": record.bound_port,
                                  "backlog": listener.get("backlog", 1),
                                  "fds": [record.fd]})
            else:
                plans.append({"type": "plain_socket", "fds": [record.fd]})
        return plans

    # -- emission ------------------------------------------------------------

    def emit(self, asm: Assembler) -> StartupPlan:
        """Emit startup code and data; returns the plan."""
        self._emit_entry(asm)
        self._emit_thread_inits(asm)
        self._emit_callbacks(asm)
        self._emit_data(asm)
        return self.plan

    def _emit_entry(self, asm: Assembler) -> None:
        lines: List[str] = ["_elfie_start:"]
        lines.append("    mov rsp, __elfie_scratch_top")
        # 1. stack remap (Fig. 5)
        for index, (start, length) in enumerate(self._stack_runs()):
            lines.append(f"""
    mov rax, 9                  ; mmap(stack, len, RW, FIXED|PRIV|ANON)
    mov rdi, 0x{start:x}
    mov rsi, {length}
    mov rdx, 3
    mov r10, 0x32
    mov r8, -1
    mov r9, 0
    syscall
    mov rsi, __elfie_staging_{index}
    mov rdi, 0x{start:x}
    mov rcx, {length // 8}
__elfie_copy_{index}:
    ld rbx, [rsi]
    st [rdi], rbx
    add rsi, 8
    add rdi, 8
    sub rcx, 1
    cmp rcx, 0
    jnz __elfie_copy_{index}
""")
        # 2. sysstate restore
        if self.sysstate is not None:
            brk_start = self.pinball.brk_start
            first_brk = self.sysstate.first_brk
            lines.append(f"""
    mov rax, 157                ; prctl(PR_SET_MM, START_BRK, ...)
    mov rdi, {PR_SET_MM}
    mov rsi, {PR_SET_MM_START_BRK}
    mov rdx, 0x{brk_start:x}
    syscall
    mov rax, 157                ; prctl(PR_SET_MM, BRK, ...)
    mov rdi, {PR_SET_MM}
    mov rsi, {PR_SET_MM_BRK}
    mov rdx, 0x{first_brk:x}
    syscall
""")
            for index, proxy in enumerate(self.sysstate.fd_files):
                lines.append(f"""
    mov rax, 2                  ; open("{proxy.name}", O_RDONLY)
    mov rdi, __elfie_fdpath_{index}
    mov rsi, 0
    syscall
    mov rdi, rax
    mov rax, 33                 ; dup2(fd, {proxy.restore_fd})
    mov rsi, {proxy.restore_fd}
    syscall
""")
                if proxy.start_offset:
                    lines.append(f"""
    mov rax, 8                  ; lseek(fd, recorded offset, SEEK_SET)
    mov rdi, {proxy.restore_fd}
    mov rsi, {proxy.start_offset}
    mov rdx, 0
    syscall
""")
        # 2a. kernel IPC objects: SysV shm segments, then pipe/socket
        # descriptors — before signal state so a handler that fires
        # right after the application jump sees them.
        self._emit_shm_restore(lines)
        self._emit_channel_restore(lines)
        # 2b. signal state: block everything for the rest of startup
        # (clones inherit the mask), re-install every captured handler,
        # and re-raise the process-wide pending set.  The raised bits
        # sit blocked until each thread init restores its captured mask,
        # so nothing delivers into startup code; delivery happens at the
        # first quantum boundary after the jump into application code —
        # the same boundary the capture stopped in front of.
        if self._has_signal_state():
            lines.append("""
    mov rax, 14                 ; rt_sigprocmask(SETMASK, all, 0)
    mov rdi, 2
    mov rsi, __elfie_sigall
    mov rdx, 0
    syscall
""")
        for index, signum in enumerate(sorted(self.pinball.sigactions)):
            lines.append(f"""
    mov rax, 13                 ; rt_sigaction({signum}, saved, 0)
    mov rdi, {signum}
    mov rsi, __elfie_sigact_{index}
    mov rdx, 0
    syscall
""")
        for signum in _mask_bits(self.pinball.process_pending):
            lines.append(f"""
    mov rax, 39                 ; getpid
    syscall
    mov rdi, rax
    mov rax, 62                 ; kill(pid, {signum}): re-raise pending
    mov rsi, {signum}
    syscall
""")
        # 3. process-level callback
        lines.append("    call elfie_on_start")
        # 4. thread creation
        records = self._thread_records()
        first = 0 if self.with_monitor else 1
        for position in range(first, len(records)):
            lines.append(f"""
    mov rax, 56                 ; clone(CLONE_VM, cbstack, init_{position})
    mov rdi, 0x100
    mov rsi, __elfie_cbstack_{position}_top
    mov rdx, __elfie_thread_init_{position}
    syscall
""")
        if self.with_monitor:
            lines.append("    jmp __elfie_monitor")
        else:
            lines.append("    jmp __elfie_thread_init_0")
        asm.add("\n".join(lines))
        self.plan.symbol_labels.append("_elfie_start")

    def _emit_shm_restore(self, lines: List[str]) -> None:
        """Recreate captured SysV segments on their captured shmids.

        Real segments: shmget lands on the right id because lower ids
        are burned first; content is copied in through an attachment —
        SHM_REMAP for segments that were attached at capture (their
        range is already occupied by ELF sections), a transient attach
        for detached ones.
        """
        for shmid, segment in self._shm_plan():
            if segment is None:
                lines.append(f"""
    mov rax, 29                 ; shmget(IPC_PRIVATE): burn id {shmid}
    mov rdi, 0
    mov rsi, 4096
    mov rdx, 512
    syscall
    mov rdi, rax
    mov rax, 31                 ; shmctl(id, IPC_RMID)
    mov rsi, 0
    mov rdx, 0
    syscall
""")
                continue
            size = segment["size"]
            words = (size + 7) // 8
            attached_at = segment.get("attached_at")
            lines.append(f"""
    mov rax, 29                 ; shmget(key 0x{segment['key']:x}) -> id {shmid}
    mov rdi, {segment['key']}
    mov rsi, {size}
    mov rdx, 512
    syscall
    mov r12, rax
""")
            if attached_at is not None:
                lines.append(f"""
    mov rax, 30                 ; shmat(id, 0x{attached_at:x}, SHM_REMAP)
    mov rdi, r12
    mov rsi, 0x{attached_at:x}
    mov rdx, 16384
    syscall
    mov r13, rax
""")
            else:
                lines.append(f"""
    mov rax, 30                 ; shmat(id, 0, 0): transient attach
    mov rdi, r12
    mov rsi, 0
    mov rdx, 0
    syscall
    mov r13, rax
""")
            if words:
                lines.append(f"""
    mov rsi, __elfie_shm_{shmid}
    mov rdi, r13
    mov rcx, {words}
__elfie_shmcopy_{shmid}:
    ld rbx, [rsi]
    st [rdi], rbx
    add rsi, 8
    add rdi, 8
    sub rcx, 1
    cmp rcx, 0
    jnz __elfie_shmcopy_{shmid}
""")
            if attached_at is None:
                lines.append("""
    mov rax, 67                 ; shmdt: back to detached
    mov rdi, r13
    syscall
""")

    #: High scratch descriptors the channel restore parks endpoints on;
    #: captured descriptor numbers are far below these.
    _SCRATCH_FDS = (1000, 1001)

    def _emit_channel_restore(self, lines: List[str]) -> None:
        """Recreate pipe/socket descriptors on their captured fds.

        Fresh endpoints are parked on high scratch descriptors, the
        buffered bytes are refilled with plain write()s, then dup2 moves
        each endpoint onto every captured descriptor number that shared
        it.  A side with no surviving descriptor is simply closed, which
        reproduces the captured EOF/EPIPE visibility.
        """
        scratch0, scratch1 = self._SCRATCH_FDS
        for plan in self._channel_plans():
            kind = plan["type"]
            if kind == "pipe":
                cid = plan["cid"]
                lines.append(f"""
    mov rax, 22                 ; pipe(tmp) for captured channel {cid}
    mov rdi, __elfie_pipetmp
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx]
    mov rax, 33                 ; park read end
    mov rsi, {scratch0}
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx]
    mov rax, 3
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx+4]
    mov rax, 33                 ; park write end
    mov rsi, {scratch1}
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx+4]
    mov rax, 3
    syscall
""")
                if plan["data"]:
                    lines.append(f"""
    mov rax, 1                  ; refill {len(plan['data'])} buffered bytes
    mov rdi, {scratch1}
    mov rsi, __elfie_chdata_{cid}
    mov rdx, {len(plan['data'])}
    syscall
""")
                self._emit_fd_placement(lines, scratch0, plan["read_fds"])
                self._emit_fd_placement(lines, scratch1, plan["write_fds"])
            elif kind == "pair":
                key = plan["key"]
                lines.append(f"""
    mov rax, 53                 ; socketpair(AF_UNIX) for channels {key[0]}/{key[1]}
    mov rdi, 1
    mov rsi, 1
    mov rdx, 0
    mov r10, __elfie_pipetmp
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx]
    mov rax, 33                 ; park end 0
    mov rsi, {scratch0}
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx]
    mov rax, 3
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx+4]
    mov rax, 33                 ; park end 1
    mov rsi, {scratch1}
    syscall
    mov rcx, __elfie_pipetmp
    ld4 rdi, [rcx+4]
    mov rax, 3
    syscall
""")
                # end0 reads key[0]: its inbound bytes are written by
                # the peer (end1), and vice versa.
                if plan["data0"]:
                    lines.append(f"""
    mov rax, 1                  ; refill end-0 inbound bytes
    mov rdi, {scratch1}
    mov rsi, __elfie_chdata_{key[0]}
    mov rdx, {len(plan['data0'])}
    syscall
""")
                if plan["data1"]:
                    lines.append(f"""
    mov rax, 1                  ; refill end-1 inbound bytes
    mov rdi, {scratch0}
    mov rsi, __elfie_chdata_{key[1]}
    mov rdx, {len(plan['data1'])}
    syscall
""")
                self._emit_fd_placement(lines, scratch0, plan["end0_fds"])
                self._emit_fd_placement(lines, scratch1, plan["end1_fds"])
            elif kind == "listener":
                port = plan["port"]
                lines.append(f"""
    mov rax, 41                 ; socket(AF_INET)
    mov rdi, 2
    mov rsi, 1
    mov rdx, 0
    syscall
    mov r12, rax
    mov rax, 49                 ; bind(fd, port {port})
    mov rdi, r12
    mov rsi, __elfie_sockaddr_{port}
    syscall
    mov rax, 50                 ; listen(fd, {plan['backlog']})
    mov rdi, r12
    mov rsi, {plan['backlog']}
    syscall
    mov rdi, r12
    mov rax, 33                 ; park the listener
    mov rsi, {scratch0}
    syscall
    mov rdi, r12
    mov rax, 3
    syscall
""")
                self._emit_fd_placement(lines, scratch0, plan["fds"])
            elif kind == "plain_socket":
                lines.append(f"""
    mov rax, 41                 ; socket(AF_UNIX): unconnected
    mov rdi, 1
    mov rsi, 1
    mov rdx, 0
    syscall
    mov rdi, rax
    mov rax, 33                 ; park it (rdi survives the syscall)
    mov rsi, {scratch0}
    syscall
    mov rax, 3
    syscall
""")
                self._emit_fd_placement(lines, scratch0, plan["fds"])

    def _emit_fd_placement(self, lines: List[str], scratch: int,
                           targets: List[int]) -> None:
        """dup2 a parked endpoint onto its captured fds, then drop it."""
        for target in targets:
            lines.append(f"""
    mov rax, 33                 ; dup2(scratch, {target})
    mov rdi, {scratch}
    mov rsi, {target}
    syscall
""")
        lines.append(f"""
    mov rax, 3                  ; close the scratch slot
    mov rdi, {scratch}
    syscall
""")

    def _thread_tail_lines(self, position: int, record) -> List[str]:
        """Instructions from context restore to the application jump.

        Every entry is exactly one retired instruction (no assembler
        macro expansion), so ``len()`` is the retired-instruction tail
        used for graceful-exit threshold adjustment.
        """
        lines = [
            f"    mov r11, __elfie_ctx_{position}",
            "    xrstor [r11]",
            f"    mov rsp, __elfie_ctx_{position}+{CTX_POP_OFFSET}",
            "    pop rax",
            "    wrfsbase rax",
            "    pop rax",
            "    wrgsbase rax",
            "    popf",
        ]
        lines += ["    pop %s" % GPR_NAMES[i] for i in POP_ORDER]
        if self.marker is not None:
            lines.append("    " + self.marker.assembly())
        lines.append(f"    mov rsp, 0x{record.regs.rsp:x}")
        lines.append(f"    jmpabs 0x{record.regs.rip:x}")
        return lines

    def _emit_thread_inits(self, asm: Assembler) -> None:
        records = self._thread_records()
        want_thread_cb = self.perf_exit or "elfie_on_thread_start" in self.user_defines
        for position, record in enumerate(records):
            tail = self._thread_tail_lines(position, record)
            lines = [f"__elfie_thread_init_{position}:"]
            # Per-thread signal state, before the callback so the lines
            # retire outside the armed graceful-exit budget.  The clone
            # loop creates threads in position order, so the ELFie tid
            # of position p is deterministic.  Pending bits are raised
            # while the startup-wide block-all mask (inherited through
            # clone) is still up, then the captured mask replaces it.
            if self._has_signal_state():
                elfie_tid = position + (1 if self.with_monitor else 0)
                for signum in _mask_bits(record.pending):
                    lines.append(f"""
    mov rax, 200                ; tkill(self, {signum}): re-raise pending
    mov rdi, {elfie_tid}
    mov rsi, {signum}
    syscall""")
                lines.append(f"""
    mov rax, 14                 ; rt_sigprocmask(SETMASK, saved, 0)
    mov rdi, 2
    mov rsi, __elfie_sigmask_{position}
    mov rdx, 0
    syscall""")
            if want_thread_cb:
                budget = 0
                if self.perf_exit:
                    # Slack > 1 keeps the graceful exit as a backstop
                    # while letting a replay under a different schedule
                    # (where spin redistributes per-thread icounts) run
                    # past the captured per-thread counts — needed when
                    # the region end is marker-metered, not icount-
                    # metered (LoopPoint).
                    budget = (int(record.region_icount
                                  * self.perf_exit_slack)
                              + len(tail) + PERFLE_CALLBACK_TAIL)
                lines.append(f"    mov rsp, __elfie_cbstack_{position}_top")
                lines.append(f"    mov rdi, {budget}")
                lines.append(f"    mov rsi, {position}")
                lines.append("    call elfie_on_thread_start")
            lines += tail
            asm.add("\n".join(lines))
            self.plan.tail_instructions[record.tid] = len(tail)
            self.plan.symbol_labels.append(f"__elfie_thread_init_{position}")

    def _emit_callbacks(self, asm: Assembler) -> None:
        if self.user_code:
            asm.add(self.user_code)
        if self.perf_exit:
            if "elfie_on_thread_start" not in self.user_defines:
                asm.add(perfle_thread_start_source())
            asm.add(perfle_exit_handler_source(notify_monitor=self.with_monitor))
            asm.add(print_u64_source())
        if "elfie_on_start" not in self.user_defines:
            asm.add(default_on_start_source())
        if self.with_monitor:
            asm.add(monitor_source())
            if "elfie_on_exit" not in self.user_defines:
                asm.add(default_on_exit_source())
        for label in ("elfie_on_start",):
            self.plan.symbol_labels.append(label)
        if self.perf_exit or "elfie_on_thread_start" in self.user_defines:
            self.plan.symbol_labels.append("elfie_on_thread_start")

    def _emit_data(self, asm: Assembler) -> None:
        # scratch stack for the entry code
        asm.add(".align 16")
        asm.emit_bytes(b"\x00" * 4096)
        asm.define_label("__elfie_scratch_top")
        asm.emit_bytes(b"\x00" * 16)
        # per-thread callback stacks
        records = self._thread_records()
        for position in range(len(records)):
            asm.emit_bytes(b"\x00" * CALLBACK_STACK_BYTES)
            asm.define_label(f"__elfie_cbstack_{position}_top")
            asm.emit_bytes(b"\x00" * 16)
        # per-thread context blocks
        asm.add(".align 64")
        for position, record in enumerate(records):
            asm.define_label(f"__elfie_ctx_{position}")
            asm.emit_bytes(pack_context(record.regs))
            self._note_context_symbols(position, record)
        # stack staging copies
        for index, (start, length) in enumerate(self._stack_runs()):
            asm.add(".align 8")
            asm.define_label(f"__elfie_staging_{index}")
            asm.emit_bytes(self._stack_bytes(start, length))
        # kernel-IPC staging: shm segment content, pipe() result slot,
        # channel buffer refills, listener sockaddrs
        shm_plan = self._shm_plan()
        if shm_plan:
            asm.add(".align 8")
            for shmid, segment in shm_plan:
                if segment is None:
                    continue
                blob = self._shm_staging_bytes(segment)
                if blob:
                    asm.define_label(f"__elfie_shm_{shmid}")
                    asm.emit_bytes(blob)
        channel_plans = self._channel_plans()
        if channel_plans:
            asm.add(".align 8")
            asm.define_label("__elfie_pipetmp")
            asm.emit_bytes(b"\x00" * 8)
            emitted_data = set()
            emitted_ports = set()
            for plan in channel_plans:
                if plan["type"] == "pipe" and plan["data"]:
                    if plan["cid"] not in emitted_data:
                        emitted_data.add(plan["cid"])
                        asm.define_label(f"__elfie_chdata_{plan['cid']}")
                        asm.emit_bytes(plan["data"])
                elif plan["type"] == "pair":
                    for cid, data in zip(plan["key"],
                                         (plan["data0"], plan["data1"])):
                        if data and cid not in emitted_data:
                            emitted_data.add(cid)
                            asm.define_label(f"__elfie_chdata_{cid}")
                            asm.emit_bytes(data)
                elif plan["type"] == "listener":
                    if plan["port"] not in emitted_ports:
                        emitted_ports.add(plan["port"])
                        asm.define_label(f"__elfie_sockaddr_{plan['port']}")
                        blob = struct.pack("<H", 2)          # sin_family
                        blob += struct.pack(">H", plan["port"])
                        asm.emit_bytes(blob + b"\x00" * 12)
        # saved sigaction blobs (guest layout: handler u64, mask u64),
        # the startup-wide block-all mask, and per-thread signal masks
        if self._has_signal_state():
            asm.add(".align 8")
            for index, signum in enumerate(sorted(self.pinball.sigactions)):
                handler, mask = self.pinball.sigactions[signum]
                asm.define_label(f"__elfie_sigact_{index}")
                asm.emit_bytes(struct.pack("<QQ", handler, mask))
            asm.define_label("__elfie_sigall")
            asm.emit_bytes(struct.pack("<Q", (1 << 64) - 1))
            for position, record in enumerate(records):
                asm.define_label(f"__elfie_sigmask_{position}")
                asm.emit_bytes(struct.pack("<Q", record.sigmask))
        # sysstate FD path strings
        if self.sysstate is not None:
            for index, proxy in enumerate(self.sysstate.fd_files):
                asm.define_label(f"__elfie_fdpath_{index}")
                asm.emit_bytes(proxy.name.encode("utf-8") + b"\x00")
        # perfle / monitor data
        if self.perf_exit:
            asm.add(print_data_source())
        if self.with_monitor:
            asm.add(monitor_data_source())

    def _note_context_symbols(self, position: int, record) -> None:
        ctx = f"__elfie_ctx_{position}"
        sym = self.plan.context_symbols
        sym.append((f".t{position}.ext_area", ctx, 0))
        sym.append((f".t{position}.fs_base", ctx, CTX_POP_OFFSET))
        sym.append((f".t{position}.gs_base", ctx, CTX_POP_OFFSET + 8))
        sym.append((f".t{position}.rflags", ctx, CTX_POP_OFFSET + 16))
        for slot, index in enumerate(POP_ORDER):
            sym.append((
                f".t{position}.{GPR_NAMES[index]}",
                ctx,
                CTX_POP_OFFSET + 24 + slot * 8,
            ))

    def _stack_bytes(self, start: int, length: int) -> bytes:
        out = bytearray()
        addr = start
        while addr < start + length:
            prot, data = self.pinball.pages[addr]
            out += data
            addr += PAGE_SIZE
        return bytes(out)
