"""ELFie startup-code generation (paper §II-B3/4, Figs. 5-7).

The startup code is real PX assembly, executed by the ELFie before any
application code:

1. **Stack remap** (Fig. 5): immediately switch off the loader-provided
   stack onto a scratch stack, ``mmap`` the parent pinball's stack range
   (whose sections are non-allocatable in the ELF, so the loader never
   mapped them), and copy the captured stack bytes from an allocatable
   staging area.
2. **Sysstate restore** (§II-C2): ``prctl(PR_SET_MM)`` the heap break
   back to the captured layout and pre-open every ``FD_n`` proxy file,
   ``dup2``-ing it onto the original descriptor number.
3. **Callbacks**: optional ``elfie_on_start`` before anything else runs
   application code.
4. **Thread creation** (Fig. 6): a clone loop starts one thread per
   captured thread; each runs its per-thread init function: optional
   ``elfie_on_thread_start`` (on a private callback stack), ``XRSTOR``
   of the extended state, restore of FS/GS bases and RFLAGS, fifteen
   ``pop``s for the GPRs, the optional ROI marker, then a
   register-free ``mov rsp, <captured rsp>; jmpabs <captured rip>``
   into the application code.

The generator reports, per thread, how many instructions execute between
the graceful-exit counter arming and the jump into application code, so
``pinball2elf`` can adjust the counter threshold to stop the ELFie at
exactly the captured region length.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.assembler import Assembler
from repro.isa.registers import GPR_NAMES, RegisterFile, XSAVE_AREA_SIZE
from repro.machine.memory import PAGE_SIZE
from repro.core.callbacks import (
    PERFLE_CALLBACK_TAIL,
    default_on_exit_source,
    default_on_start_source,
    monitor_data_source,
    monitor_source,
    perfle_exit_handler_source,
    perfle_thread_start_source,
    print_data_source,
    print_u64_source,
)
from repro.core.markers import MarkerSpec
from repro.pinplay.pinball import Pinball
from repro.pinplay.sysstate import SysState

#: GPR restore order (hardware indices): rax rcx rdx rbx rbp rsi rdi
#: r8..r15 — everything except rsp, which the thread-entry stub sets.
POP_ORDER: Tuple[int, ...] = (0, 1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)

#: Context block layout (one per thread, in the startup data area):
#: [xsave area][fs][gs][rflags][15 GPRs in POP_ORDER], padded to 320.
CTX_POP_OFFSET = XSAVE_AREA_SIZE
CTX_SIZE = 320

#: Callback scratch-stack bytes per thread.
CALLBACK_STACK_BYTES = 2048

PR_SET_MM = 35
PR_SET_MM_START_BRK = 6
PR_SET_MM_BRK = 7


def pack_context(regs: RegisterFile) -> bytes:
    """Serialize one thread's context block (without rsp/rip)."""
    parts = [regs.xsave_bytes()]
    parts.append(struct.pack("<Q", regs.fs_base))
    parts.append(struct.pack("<Q", regs.gs_base))
    parts.append(struct.pack("<Q", regs.flags.to_word()))
    for index in POP_ORDER:
        parts.append(struct.pack("<Q", regs.gpr[index]))
    blob = b"".join(parts)
    return blob + b"\x00" * (CTX_SIZE - len(blob))


@dataclass
class StartupPlan:
    """What the generator decided, for symbols and threshold math."""

    #: Instructions retired by thread i between the return of
    #: elfie_on_thread_start and the jmpabs into application code
    #: (inclusive of the jmpabs).
    tail_instructions: Dict[int, int] = field(default_factory=dict)
    #: Labels whose addresses become ELF symbols after assembly.
    symbol_labels: List[str] = field(default_factory=list)
    #: (symbol name, context label, byte offset) records for .tN.* syms.
    context_symbols: List[Tuple[str, str, int]] = field(default_factory=list)


class StartupGenerator:
    """Emits the full startup blob into an :class:`Assembler`."""

    def __init__(self, pinball: Pinball,
                 marker: Optional[MarkerSpec] = None,
                 perf_exit: bool = False,
                 perf_exit_slack: float = 1.0,
                 with_monitor: bool = False,
                 sysstate: Optional[SysState] = None,
                 user_code: Optional[str] = None,
                 user_defines: Tuple[str, ...] = (),
                 remap_stack: bool = True) -> None:
        self.remap_stack = remap_stack
        self.pinball = pinball
        self.marker = marker
        self.perf_exit = perf_exit
        self.perf_exit_slack = perf_exit_slack
        self.with_monitor = with_monitor
        self.sysstate = sysstate
        self.user_code = user_code
        self.user_defines = set(user_defines)
        self.plan = StartupPlan()

    # -- helpers -----------------------------------------------------------

    def _stack_runs(self) -> List[Tuple[int, int]]:
        """(start, length) of the pinball's stack page runs (empty when
        the stack was not captured — lazy pinballs — or when the
        stack-collision fix is disabled)."""
        if not self.remap_stack:
            return []
        stack = self.pinball.try_stack_range()
        if stack is None:
            return []
        start, end = stack
        return [(start, end - start)]

    def _thread_records(self):
        return sorted(self.pinball.threads, key=lambda r: r.tid)

    # -- emission ------------------------------------------------------------

    def emit(self, asm: Assembler) -> StartupPlan:
        """Emit startup code and data; returns the plan."""
        self._emit_entry(asm)
        self._emit_thread_inits(asm)
        self._emit_callbacks(asm)
        self._emit_data(asm)
        return self.plan

    def _emit_entry(self, asm: Assembler) -> None:
        lines: List[str] = ["_elfie_start:"]
        lines.append("    mov rsp, __elfie_scratch_top")
        # 1. stack remap (Fig. 5)
        for index, (start, length) in enumerate(self._stack_runs()):
            lines.append(f"""
    mov rax, 9                  ; mmap(stack, len, RW, FIXED|PRIV|ANON)
    mov rdi, 0x{start:x}
    mov rsi, {length}
    mov rdx, 3
    mov r10, 0x32
    mov r8, -1
    mov r9, 0
    syscall
    mov rsi, __elfie_staging_{index}
    mov rdi, 0x{start:x}
    mov rcx, {length // 8}
__elfie_copy_{index}:
    ld rbx, [rsi]
    st [rdi], rbx
    add rsi, 8
    add rdi, 8
    sub rcx, 1
    cmp rcx, 0
    jnz __elfie_copy_{index}
""")
        # 2. sysstate restore
        if self.sysstate is not None:
            brk_start = self.pinball.brk_start
            first_brk = self.sysstate.first_brk
            lines.append(f"""
    mov rax, 157                ; prctl(PR_SET_MM, START_BRK, ...)
    mov rdi, {PR_SET_MM}
    mov rsi, {PR_SET_MM_START_BRK}
    mov rdx, 0x{brk_start:x}
    syscall
    mov rax, 157                ; prctl(PR_SET_MM, BRK, ...)
    mov rdi, {PR_SET_MM}
    mov rsi, {PR_SET_MM_BRK}
    mov rdx, 0x{first_brk:x}
    syscall
""")
            for index, proxy in enumerate(self.sysstate.fd_files):
                lines.append(f"""
    mov rax, 2                  ; open("{proxy.name}", O_RDONLY)
    mov rdi, __elfie_fdpath_{index}
    mov rsi, 0
    syscall
    mov rdi, rax
    mov rax, 33                 ; dup2(fd, {proxy.restore_fd})
    mov rsi, {proxy.restore_fd}
    syscall
""")
                if proxy.start_offset:
                    lines.append(f"""
    mov rax, 8                  ; lseek(fd, recorded offset, SEEK_SET)
    mov rdi, {proxy.restore_fd}
    mov rsi, {proxy.start_offset}
    mov rdx, 0
    syscall
""")
        # 3. process-level callback
        lines.append("    call elfie_on_start")
        # 4. thread creation
        records = self._thread_records()
        first = 0 if self.with_monitor else 1
        for position in range(first, len(records)):
            lines.append(f"""
    mov rax, 56                 ; clone(CLONE_VM, cbstack, init_{position})
    mov rdi, 0x100
    mov rsi, __elfie_cbstack_{position}_top
    mov rdx, __elfie_thread_init_{position}
    syscall
""")
        if self.with_monitor:
            lines.append("    jmp __elfie_monitor")
        else:
            lines.append("    jmp __elfie_thread_init_0")
        asm.add("\n".join(lines))
        self.plan.symbol_labels.append("_elfie_start")

    def _thread_tail_lines(self, position: int, record) -> List[str]:
        """Instructions from context restore to the application jump.

        Every entry is exactly one retired instruction (no assembler
        macro expansion), so ``len()`` is the retired-instruction tail
        used for graceful-exit threshold adjustment.
        """
        lines = [
            f"    mov r11, __elfie_ctx_{position}",
            "    xrstor [r11]",
            f"    mov rsp, __elfie_ctx_{position}+{CTX_POP_OFFSET}",
            "    pop rax",
            "    wrfsbase rax",
            "    pop rax",
            "    wrgsbase rax",
            "    popf",
        ]
        lines += ["    pop %s" % GPR_NAMES[i] for i in POP_ORDER]
        if self.marker is not None:
            lines.append("    " + self.marker.assembly())
        lines.append(f"    mov rsp, 0x{record.regs.rsp:x}")
        lines.append(f"    jmpabs 0x{record.regs.rip:x}")
        return lines

    def _emit_thread_inits(self, asm: Assembler) -> None:
        records = self._thread_records()
        want_thread_cb = self.perf_exit or "elfie_on_thread_start" in self.user_defines
        for position, record in enumerate(records):
            tail = self._thread_tail_lines(position, record)
            lines = [f"__elfie_thread_init_{position}:"]
            if want_thread_cb:
                budget = 0
                if self.perf_exit:
                    # Slack > 1 keeps the graceful exit as a backstop
                    # while letting a replay under a different schedule
                    # (where spin redistributes per-thread icounts) run
                    # past the captured per-thread counts — needed when
                    # the region end is marker-metered, not icount-
                    # metered (LoopPoint).
                    budget = (int(record.region_icount
                                  * self.perf_exit_slack)
                              + len(tail) + PERFLE_CALLBACK_TAIL)
                lines.append(f"    mov rsp, __elfie_cbstack_{position}_top")
                lines.append(f"    mov rdi, {budget}")
                lines.append(f"    mov rsi, {position}")
                lines.append("    call elfie_on_thread_start")
            lines += tail
            asm.add("\n".join(lines))
            self.plan.tail_instructions[record.tid] = len(tail)
            self.plan.symbol_labels.append(f"__elfie_thread_init_{position}")

    def _emit_callbacks(self, asm: Assembler) -> None:
        if self.user_code:
            asm.add(self.user_code)
        if self.perf_exit:
            if "elfie_on_thread_start" not in self.user_defines:
                asm.add(perfle_thread_start_source())
            asm.add(perfle_exit_handler_source(notify_monitor=self.with_monitor))
            asm.add(print_u64_source())
        if "elfie_on_start" not in self.user_defines:
            asm.add(default_on_start_source())
        if self.with_monitor:
            asm.add(monitor_source())
            if "elfie_on_exit" not in self.user_defines:
                asm.add(default_on_exit_source())
        for label in ("elfie_on_start",):
            self.plan.symbol_labels.append(label)
        if self.perf_exit or "elfie_on_thread_start" in self.user_defines:
            self.plan.symbol_labels.append("elfie_on_thread_start")

    def _emit_data(self, asm: Assembler) -> None:
        # scratch stack for the entry code
        asm.add(".align 16")
        asm.emit_bytes(b"\x00" * 4096)
        asm.define_label("__elfie_scratch_top")
        asm.emit_bytes(b"\x00" * 16)
        # per-thread callback stacks
        records = self._thread_records()
        for position in range(len(records)):
            asm.emit_bytes(b"\x00" * CALLBACK_STACK_BYTES)
            asm.define_label(f"__elfie_cbstack_{position}_top")
            asm.emit_bytes(b"\x00" * 16)
        # per-thread context blocks
        asm.add(".align 64")
        for position, record in enumerate(records):
            asm.define_label(f"__elfie_ctx_{position}")
            asm.emit_bytes(pack_context(record.regs))
            self._note_context_symbols(position, record)
        # stack staging copies
        for index, (start, length) in enumerate(self._stack_runs()):
            asm.add(".align 8")
            asm.define_label(f"__elfie_staging_{index}")
            asm.emit_bytes(self._stack_bytes(start, length))
        # sysstate FD path strings
        if self.sysstate is not None:
            for index, proxy in enumerate(self.sysstate.fd_files):
                asm.define_label(f"__elfie_fdpath_{index}")
                asm.emit_bytes(proxy.name.encode("utf-8") + b"\x00")
        # perfle / monitor data
        if self.perf_exit:
            asm.add(print_data_source())
        if self.with_monitor:
            asm.add(monitor_data_source())

    def _note_context_symbols(self, position: int, record) -> None:
        ctx = f"__elfie_ctx_{position}"
        sym = self.plan.context_symbols
        sym.append((f".t{position}.ext_area", ctx, 0))
        sym.append((f".t{position}.fs_base", ctx, CTX_POP_OFFSET))
        sym.append((f".t{position}.gs_base", ctx, CTX_POP_OFFSET + 8))
        sym.append((f".t{position}.rflags", ctx, CTX_POP_OFFSET + 16))
        for slot, index in enumerate(POP_ORDER):
            sym.append((
                f".t{position}.{GPR_NAMES[index]}",
                ctx,
                CTX_POP_OFFSET + 24 + slot * 8,
            ))

    def _stack_bytes(self, start: int, length: int) -> bytes:
        out = bytearray()
        addr = start
        while addr < start + length:
            prot, data = self.pinball.pages[addr]
            out += data
            addr += PAGE_SIZE
        return bytes(out)
