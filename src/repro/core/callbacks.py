"""The ``libperfle`` callback library, in PX assembly (paper §II-B5, §III-B).

``pinball2elf`` can link user code into an ELFie and call it at three
points: process start (``-p elfie_on_start``), each thread's start
(``-t elfie_on_thread_start``), and process exit (``-e
elfie_on_exit``).  This module provides the stock implementations the
pinball2elf distribution ships for the common use cases:

- a thread-start callback that programs a hardware performance counter
  to count retired instructions and deliver an overflow callback at the
  region's recorded instruction count — the graceful-exit mechanism,
- an overflow handler that prints the final counter values to stderr
  and exits the thread,
- a decimal-printing routine (``__perfle_print_u64``) because there is
  no libc inside an ELFie,
- default no-op callbacks for the hooks the user did not implement.

ABI: callbacks follow the platform convention — arguments in rdi/rsi,
r11 caller-clobbered, return with ``ret``.
"""

from __future__ import annotations

#: Instructions the perfle thread-start callback retires *after* its
#: arming syscall returns (just the ``ret``).  pinball2elf adds this to
#: the counter threshold so the trap fires exactly at the end of the
#: captured region's instructions.
PERFLE_CALLBACK_TAIL = 1

#: PMU event codes (must match repro.machine.kernel PERF_COUNT_*).
_EV_INSTRUCTIONS = 0
_EV_CYCLES = 1


def perfle_thread_start_source() -> str:
    """``elfie_on_thread_start``: arm the graceful-exit counter.

    Called with rdi = retired-instruction budget (already adjusted for
    startup tail instructions) and rsi = thread index.  A zero budget
    means "no exit arming" (used when a simulator ends the run instead).
    """
    return """
elfie_on_thread_start:
    cmp rdi, 0
    jz __perfle_no_arm
    mov rsi, rdi                ; threshold
    mov rdi, %d                 ; event: instructions retired
    mov rdx, __perfle_exit_handler
    mov rax, 298                ; perf_event_open
    syscall
__perfle_no_arm:
    ret
""" % _EV_INSTRUCTIONS


def perfle_exit_handler_source(notify_monitor: bool) -> str:
    """The counter-overflow handler: report counters, exit the thread.

    Prints two decimal lines to stderr — instructions retired and
    cycles — then (optionally) bumps the monitor flag and exits.
    """
    notify = ""
    if notify_monitor:
        notify = """
    mov rdx, __elfie_exit_flag
    mov rbx, 1
    xadd [rdx], rbx
"""
    return """
__perfle_exit_handler:
    mov rax, 334                ; perf_read(instructions)
    mov rdi, %d
    syscall
    mov rdi, rax
    call __perfle_print_u64
    mov rax, 334                ; perf_read(cycles)
    mov rdi, %d
    syscall
    mov rdi, rax
    call __perfle_print_u64
%s
    mov rax, 60                 ; exit(0): graceful thread exit
    mov rdi, 0
    syscall
""" % (_EV_INSTRUCTIONS, _EV_CYCLES, notify)


def print_u64_source() -> str:
    """``__perfle_print_u64``: write rdi as decimal + newline to stderr.

    Builds the digit string backwards in a static buffer.  The buffer
    is shared, so concurrent prints from multiple threads can interleave
    — the same caveat the real libperfle has; harnesses that need exact
    per-thread numbers read the PMU host-side instead.
    """
    return """
__perfle_print_u64:
    mov r8, __perfle_buf_end
    mov r9, 10
__perfle_digit:
    mov rdx, rdi
    mod rdx, r9
    add rdx, 48
    sub r8, 1
    st1 [r8], rdx
    div rdi, r9
    cmp rdi, 0
    jnz __perfle_digit
    mov rdx, __perfle_buf_end
    sub rdx, r8
    mov rsi, r8
    mov rdi, 2
    mov rax, 1                  ; write(2, digits, len)
    syscall
    mov rax, 1                  ; write(2, "\\n", 1)
    mov rdi, 2
    mov rsi, __perfle_nl
    mov rdx, 1
    syscall
    ret
"""


def print_data_source() -> str:
    """Data used by the printing routine."""
    return """
__perfle_buf:
    .zero 24
__perfle_buf_end:
    .byte 0
__perfle_nl:
    .ascii "\\n"
"""


def default_on_start_source() -> str:
    """A no-op ``elfie_on_start`` for when the user supplies none."""
    return "elfie_on_start:\n    ret\n"


def default_on_exit_source() -> str:
    """Default ``elfie_on_exit``: nothing to report."""
    return "elfie_on_exit:\n    ret\n"


def monitor_source() -> str:
    """The monitor-thread body (paper's ``-e`` switch).

    The monitor spins (active wait) on ``__elfie_exit_flag``, which the
    perfle exit handler bumps when an application thread finishes, then
    calls ``elfie_on_exit`` and terminates the process.
    """
    return """
__elfie_monitor:
    mov rdx, __elfie_exit_flag
__elfie_monitor_wait:
    ld rax, [rdx]
    cmp rax, 1
    jae __elfie_monitor_done
    pause
    jmp __elfie_monitor_wait
__elfie_monitor_done:
    call elfie_on_exit
    mov rax, 231                ; exit_group(0)
    mov rdi, 0
    syscall
"""


def monitor_data_source() -> str:
    return "__elfie_exit_flag:\n    .quad 0\n"
