"""Command-line front-end for the tool-chain.

Mirrors the pinball2elf distribution's command-line surface so shell
workflows read like the paper's:

    python -m repro.core.cli pinball2elf --pinball DIR/NAME --out x.elfie \\
        --roi-start sniper:0x42 --perf-exit
    python -m repro.core.cli pinball2elf --pinball DIR/NAME --object
    python -m repro.core.cli sysstate   --pinball DIR/NAME --out-dir SYS
    python -m repro.core.cli replay     --pinball DIR/NAME [--injection 0]
    python -m repro.core.cli logger     --binary prog.elf --start N \\
        --length M [--warmup W] [--fat/--no-fat] --out DIR --name NAME

The differential replay-fidelity verifier:

    python -m repro.core.cli verify run  --pinball DIR/NAME --binary prog.elf
    python -m repro.core.cli verify fuzz --time-budget 60
    python -m repro.core.cli verify corpus --corpus tests/corpus

The checkpoint farm (store-memoized, parallel PinPoints campaigns):

    python -m repro.core.cli farm run   --store .farm --app 502.gcc_r \\
        --app 505.mcf_r --jobs 4 --manifest run.jsonl
    python -m repro.core.cli farm stats --store .farm
    python -m repro.core.cli farm gc    --store .farm [--dry-run]

Global ``--trace FILE`` / ``--metrics FILE`` (before the subcommand)
export a Chrome trace-event JSON and a metrics snapshot of the run:

    python -m repro.core.cli --trace run.json --metrics run-metrics.json \\
        farm run --store .farm --app 505.mcf_r --manifest run.jsonl

Binaries are PX ELF executables (build them with
``repro.workloads.build_executable`` or the assembler).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.markers import MarkerSpec
from repro.core.pinball2elf import Pinball2Elf, Pinball2ElfOptions
from repro.core.elfie import run_elfie
from repro.observe import hooks
from repro.pinplay.logger import LogOptions, log_region
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.pinplay.replayer import replay
from repro.pinplay.sysstate import extract_sysstate


def _load_pinball(spec: str) -> Pinball:
    """Load DIR/NAME (the pinball file prefix, as in PinPlay)."""
    if "/" in spec:
        directory, _, name = spec.rpartition("/")
    else:
        directory, name = ".", spec
    return Pinball.load(directory, name)


def _cmd_pinball2elf(args: argparse.Namespace) -> int:
    pinball = _load_pinball(args.pinball)
    options = Pinball2ElfOptions(
        output="object" if args.object else "executable",
        marker=MarkerSpec.parse(args.roi_start) if args.roi_start else None,
        perf_exit=args.perf_exit,
        monitor=args.monitor,
        dump_contexts=args.dump_contexts,
        stack_fix=not args.no_stack_fix,
        sysstate=extract_sysstate(pinball) if args.sysstate else None,
    )
    artifact = Pinball2Elf(pinball, options).convert()
    artifact.save(args.out)
    print("wrote %s (%d bytes, entry 0x%x)"
          % (args.out, len(artifact.image), artifact.entry))
    if artifact.linker_script is not None:
        print("wrote %s.lds" % args.out)
    if artifact.context_listing is not None:
        print("wrote %s.ctx.s" % args.out)
    return 0


def _cmd_sysstate(args: argparse.Namespace) -> int:
    pinball = _load_pinball(args.pinball)
    state = extract_sysstate(pinball)
    report = {
        "pinball": pinball.name,
        "fd_files": [
            {"name": proxy.name, "fd": proxy.restore_fd,
             "bytes": len(proxy.data)}
            for proxy in state.fd_files
        ],
        "named_files": [
            {"name": proxy.name, "bytes": len(proxy.data)}
            for proxy in state.named_files
        ],
        "first_brk": "0x%x" % state.first_brk,
        "last_brk": "0x%x" % state.last_brk,
    }
    print(json.dumps(report, indent=2))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    pinball = _load_pinball(args.pinball)
    result = replay(pinball, injection=bool(args.injection))
    print("status: %s %s" % (result.status.kind, result.status.detail))
    print("instructions: %d (recorded %d)"
          % (result.total_icount, pinball.region_icount))
    if args.injection:
        print("injected syscalls: %d" % result.injected_syscalls)
        print("matches recording: %s" % result.matches_recording)
    # A structured divergence is a hard failure in either mode: scripts
    # must be able to gate on the exit status, not parse stdout.
    if result.diverged:
        print("divergence: %s" % result.diverged)
        return 1
    return 0 if result.status.kind in ("exit", "stopped") else 1


def _cmd_logger(args: argparse.Namespace) -> int:
    with open(args.binary, "rb") as handle:
        image = handle.read()
    region = RegionSpec(start=args.start, length=args.length,
                        warmup=args.warmup, name=args.name)
    pinball = log_region(image, region,
                         LogOptions(name=args.name, fat=args.fat))
    prefix = pinball.save(args.out)
    print("wrote pinball %s.* (%d pages, %d threads, %d instructions)"
          % (prefix, len(pinball.pages), pinball.num_threads,
             pinball.region_icount))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.elfie, "rb") as handle:
        image = handle.read()
    run = run_elfie(image, seed=args.seed)
    print("status: %s %s" % (run.status.kind, run.status.detail))
    if run.stderr:
        sys.stderr.write(run.stderr.decode("ascii", "replace"))
    if run.stdout:
        sys.stdout.write(run.stdout.decode("ascii", "replace"))
    if run.app_icounts:
        print("application instructions: %s" % run.app_icounts)
    return run.status.code if run.status.kind == "exit" else 128


def _cmd_verify_run(args: argparse.Namespace) -> int:
    from repro.verify import verify_pinball

    pinball = _load_pinball(args.pinball)
    with open(args.binary, "rb") as handle:
        image = handle.read()
    previous = None
    if args.dispatch is not None:
        from repro.machine.cpu import set_default_dispatch
        previous = set_default_dispatch(args.dispatch)
    try:
        report = verify_pinball(image, pinball, seed=args.seed,
                                epochs=args.epochs,
                                bisect=not args.no_bisect)
    finally:
        if previous is not None:
            from repro.machine.cpu import set_default_dispatch
            set_default_dispatch(previous)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
    if report.divergence is not None and not args.no_bisect:
        print(report.divergence.diff)
    return 0 if report.ok else 1


def _cmd_verify_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import fuzz, save_corpus_case
    from repro.verify.corpus import default_corpus_dir

    summary = fuzz(time_budget=args.time_budget, start_seed=args.start_seed,
                   max_cases=args.max_cases, seed=args.seed,
                   minimize=not args.no_minimize,
                   checkpoint_path=args.checkpoint,
                   dispatch=args.dispatch)
    print("cases run: %d  invalid: %d  divergences: %d"
          % (summary.cases_run, summary.invalid, len(summary.failures)))
    for outcome in summary.failures:
        print("FAIL stage=%s case=%s" % (outcome.stage, outcome.case.name))
        print("  detail: %s" % outcome.detail)
        print("  minimized seed: %s"
              % json.dumps(outcome.case.to_json(), sort_keys=True))
        if args.save_failures:
            directory = args.corpus or default_corpus_dir()
            path = save_corpus_case(directory, outcome.case,
                                    name="fuzz-%s" % outcome.case.name,
                                    bug="found by verify fuzz (stage %s)"
                                        % outcome.stage)
            print("  saved: %s" % path)
    return 1 if summary.failures else 0


def _cmd_verify_corpus(args: argparse.Namespace) -> int:
    from repro.verify import failing, format_failure, replay_corpus
    from repro.verify.corpus import default_corpus_dir

    directory = args.corpus or default_corpus_dir()
    results = replay_corpus(directory, seed=args.seed)
    if not results:
        print("no corpus cases under %s" % directory)
        return 0
    bad = failing(results)
    print("corpus: %d cases, %d failing" % (len(results), len(bad)))
    for entry, outcome in bad:
        print(format_failure(entry, outcome))
    return 1 if bad else 0


def _cmd_verify_lockstep(args: argparse.Namespace) -> int:
    from repro.verify import lockstep_corpus
    from repro.verify.corpus import default_corpus_dir

    directory = args.corpus or default_corpus_dir()
    sweep = lockstep_corpus(directory, seed=args.seed, hops=args.hops,
                            hop_seed=args.hop_seed,
                            mt_count=args.mt_cases, epochs=args.epochs)
    for name, outcome in sweep.outcomes:
        print(outcome.summary())
    print("lockstep: %d workloads, %d failing"
          % (len(sweep.outcomes), len(sweep.failures)))
    return 1 if sweep.failures else 0


def _cmd_verify_aslr(args: argparse.Namespace) -> int:
    from repro.verify import FuzzCase, aslr_invariance

    recipes = (
        ("arith", "mmap"),
        ("arith", "futex"),
        ("arith", "futex", "signals"),
        ("arith", "futex", "pipes"),
        ("arith", "shm"),
        ("arith", "files"),
    )
    failures = 0
    for index in range(args.cases):
        features = recipes[index % len(recipes)]
        case = FuzzCase(seed=args.start_seed + index,
                        threads=2 if "futex" in features else 1,
                        iterations=2, features=features,
                        region_pos=30, region_len_pct=60)
        outcome = aslr_invariance(case, args.aslr_seed + index,
                                  seed=args.seed)
        print("%s %s features=%s" % ("ok  " if outcome.ok else "FAIL",
                                     case.name, ",".join(features)))
        if not outcome.ok:
            failures += 1
            print("  stage=%s detail=%s" % (outcome.stage, outcome.detail))
    print("aslr invariance: %d cases, %d failing" % (args.cases, failures))
    return 1 if failures else 0


def _campaign_images(args: argparse.Namespace) -> dict:
    from repro.workloads import get_app

    return {name: get_app(name).build(args.input) for name in args.app}


def _looppoint_image(args: argparse.Namespace):
    """(image, name) from --binary PATH or --app SUITE_NAME."""
    if args.binary:
        with open(args.binary, "rb") as handle:
            return handle.read(), args.binary.rpartition("/")[2]
    from repro.workloads import get_app

    return get_app(args.app).build(args.input), args.app


def _cmd_looppoint_profile(args: argparse.Namespace) -> int:
    from repro.looppoint import collect_looppoint, harvest_markers

    image, name = _looppoint_image(args)
    marker_map = harvest_markers(image)
    print("%s: module %s, %d work markers, %d sync markers (excluded)"
          % (name, marker_map.module, len(marker_map.work_markers),
             len(marker_map.sync_markers)))
    for marker in marker_map.markers:
        print("  +0x%-6x %-6s %s" % (marker.offset, marker.kind,
                                     marker.symbol or "?"))
    if args.markers_out:
        with open(args.markers_out, "w") as handle:
            json.dump(marker_map.to_json(), handle, indent=2)
            handle.write("\n")
        print("marker map -> %s" % args.markers_out)
    profile = collect_looppoint(image, slice_markers=args.slice_markers,
                                seed=args.seed, marker_map=marker_map)
    print("%d slices of %d work-marker crossings; %d work / %d sync "
          "crossings; %d instructions, CPI %.3f"
          % (len(profile.slices), args.slice_markers,
             profile.work_crossings, profile.sync_crossings,
             profile.total_icount, profile.whole_program_cpi))
    return 0


def _cmd_looppoint_select(args: argparse.Namespace) -> int:
    from repro.looppoint import collect_looppoint, select_loop_regions

    image, name = _looppoint_image(args)
    profile = collect_looppoint(image, slice_markers=args.slice_markers,
                                seed=args.seed)
    selection = select_loop_regions(profile, max_k=args.max_k,
                                    seed=args.cluster_seed)
    regions = selection.regions(warmup_slices=args.warmup_slices,
                                name_prefix="%s.L" % name,
                                max_alternates=args.alternates)
    primaries = [r for r in regions if ".alt" not in r.name]
    print("%s: %d clusters -> %d regions (+%d alternates)"
          % (name, len(selection.clusters), len(primaries),
             len(regions) - len(primaries)))
    for region in primaries:
        start, end = selection.marker_window(region.name)
        window = "?"
        if start and end:
            window = "+0x%x:%d .. +0x%x:%d" % (start.offset, start.count,
                                               end.offset, end.count)
        print("  %-14s weight %.3f  icount [%d, %d)  markers %s"
              % (region.name, region.weight, region.start,
                 region.start + region.length, window))
    if args.json:
        def _region_json(r):
            skip, measure = selection.measure_crossings(r.name)
            return {"name": r.name, "start": r.start, "length": r.length,
                    "warmup": r.warmup, "weight": r.weight,
                    "skip": skip, "measure": measure,
                    "markers": {
                        side: point.to_json() if point else None
                        for side, point in zip(
                            ("start", "end"),
                            selection.marker_window(r.name))}}

        payload = {
            "app": name,
            "selector": "looppoint/v1",
            "regions": [_region_json(r) for r in regions],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return 0


def _cmd_looppoint_validate(args: argparse.Namespace) -> int:
    from repro.looppoint import run_looppoint, validate_looppoint

    image, name = _looppoint_image(args)
    result = run_looppoint(image, name, slice_markers=args.slice_markers,
                           warmup_slices=args.warmup_slices,
                           max_k=args.max_k,
                           seed=args.seed, max_alternates=args.alternates,
                           cluster_seed=args.cluster_seed)
    validation = validate_looppoint(result, seed=args.validate_seed,
                                    trials=args.trials)
    print("%s: %d regions, %d ELFies" % (name, len(result.primary_regions),
                                         len(result.elfies)))
    print("whole-program CPI %.4f, predicted %.4f, |error| %.2f%%, "
          "coverage %.0f%%"
          % (validation.whole_program_cpi, validation.predicted_cpi,
             validation.abs_error_percent, 100 * validation.covered_weight))
    return 0 if validation.abs_error_percent <= args.max_error else 1


def _campaign_validations(args: argparse.Namespace) -> list:
    from repro.simpoint import elfie_validation, fidelity_validation

    if getattr(args, "selector", "bbv-simpoint") == "looppoint":
        from repro.looppoint import looppoint_validation

        validations = [looppoint_validation("elfie", seed=args.validate_seed,
                                            trials=args.trials)]
    else:
        validations = [elfie_validation("elfie", seed=args.validate_seed,
                                        trials=args.trials)]
    if args.verify_fidelity:
        validations.append(fidelity_validation(
            "fidelity", seed=args.validate_seed,
            max_regions=args.fidelity_regions))
    return validations


def _cmd_farm_run(args: argparse.Namespace) -> int:
    import signal

    from repro.farm import FarmRunner, open_store

    if args.shards:
        from repro.service import ShardedStore
        store = ShardedStore(args.store, shards=args.shards)
    else:
        store = open_store(args.store)
    images = _campaign_images(args)
    validations = _campaign_validations(args)
    runner = None
    if args.preemptible:
        from repro.snapshot import preempt

        preempt.reset()
        runner = FarmRunner(store, jobs=args.jobs,
                            manifest_path=args.manifest, preemptible=True)

        def _drain(signum, frame):
            sys.stderr.write("SIGTERM: draining — checkpointing the "
                             "in-flight job\n")
            preempt.request()

        signal.signal(signal.SIGTERM, _drain)
    common = dict(
        jobs=args.jobs,
        manifest_path=args.manifest,
        runner=runner,
        max_k=args.max_k,
        max_alternates=args.alternates,
        seed=args.seed,
        validations=validations,
        preemptible=args.preemptible,
    )
    if args.selector == "looppoint":
        from repro.looppoint import run_looppoint_campaign

        outcomes = run_looppoint_campaign(
            images, store, slice_markers=args.slice_markers,
            warmup_slices=args.warmup_slices, **common)
    else:
        from repro.simpoint import run_pinpoints_campaign

        outcomes = run_pinpoints_campaign(
            images, store, slice_size=args.slice_size,
            warmup=args.warmup, **common)
    code = _report_campaign(outcomes, args.manifest)
    if runner is not None:
        interrupted = sorted(
            name for name, state in runner.report.states.items()
            if state in ("preempted", "deferred"))
        if interrupted:
            sys.stderr.write(
                "campaign preempted (%d jobs deferred); re-run the same "
                "command to resume from the store\n" % len(interrupted))
            return 75  # EX_TEMPFAIL: partial, resumable
    return code


def _report_campaign(outcomes: dict, manifest_path: Optional[str]) -> int:
    from repro.farm import read_manifest, summarize_manifest

    failed_fidelity = False
    for name, outcome in outcomes.items():
        validation = outcome.validations.get("elfie")
        if validation is None:
            print("%s: %d regions, %d ELFies (validation deferred)"
                  % (name, len(outcome.result.primary_regions),
                     len(outcome.result.elfies)))
            continue
        print("%s: %d regions, %d ELFies, |error| %.2f%%, coverage %.0f%%"
              % (name, len(outcome.result.primary_regions),
                 len(outcome.result.elfies),
                 validation.abs_error_percent,
                 100 * validation.covered_weight))
        fidelity = outcome.validations.get("fidelity")
        if fidelity is not None:
            print("%s: fidelity %s (%d regions verified%s)"
                  % (name, "OK" if fidelity["ok"] else "FAIL",
                     fidelity["checked"],
                     ", %d skipped" % fidelity["skipped"]
                     if fidelity["skipped"] else ""))
            for region, report in sorted(fidelity["regions"].items()):
                if not report["ok"] and report["divergence"]:
                    print("  %s diverges at epoch %s, instruction %s"
                          % (region, report["divergence"]["epoch"],
                             report["divergence"]["icount"]))
            failed_fidelity = failed_fidelity or not fidelity["ok"]
    if manifest_path:
        summary = summarize_manifest(read_manifest(manifest_path))
        print("jobs: %d  cache hits: %d  misses: %d  retries: %d  "
              "workers: %d" % (summary["jobs"], summary["cache_hits"],
                               summary["cache_misses"], summary["retries"],
                               len(summary["workers"])))
        lookups = summary["cache_hits"] + summary["cache_misses"]
        hit_rate = 100.0 * summary["cache_hits"] / lookups if lookups else 0.0
        stage_walls = "  ".join(
            "%s %.2fs" % (stage, info["wall_s"])
            for stage, info in summary["stages"].items() if info["wall_s"])
        print("cache-hit rate: %.1f%%  stage wall: %s"
              % (hit_rate, stage_walls or "all cached"))
        if summary["executed_icount"]:
            stage_mips = "  ".join(
                "%s %.2f" % (stage, info["mips"])
                for stage, info in summary["stages"].items()
                if info["mips"])
            print("interpreter MIPS: %.2f aggregate (%.1fM instrs / %.2fs)"
                  "  by stage: %s"
                  % (summary["mips"], summary["executed_icount"] / 1e6,
                     summary["interp_wall_s"], stage_mips or "n/a"))
    return 1 if failed_fidelity else 0


def _cmd_farm_stats(args: argparse.Namespace) -> int:
    from repro.farm import open_store

    stats = open_store(args.store).stats()
    print(json.dumps(stats.to_json(), indent=2))
    if args.json:
        return 0  # stdout stays pure JSON (pipe to jq)
    # the human summary goes to stderr, per-shard breakdown included
    sys.stderr.write(
        "block pool: %d raw -> %d compressed bytes (%.2fx), dedup %.2fx\n"
        % (stats.unique_bytes, stats.compressed_bytes,
           stats.compression_ratio, stats.dedup_ratio))
    for shard, info in sorted(getattr(stats, "shards", {}).items()):
        sys.stderr.write(
            "  %s: %d objects, %d blocks, %d bytes, hit rate %.1f%%, "
            "%d repairs\n"
            % (shard, info["objects"], info["blocks"], info["stored_bytes"],
               100.0 * info["hit_rate"], info["repairs"]))
    return 0


def _cmd_farm_gc(args: argparse.Namespace) -> int:
    from repro.farm import open_store

    result = open_store(args.store).gc(
        dry_run=args.dry_run,
        prune_snapshots=args.prune_snapshots,
        snapshot_roots=args.snapshot_root or ())
    verb = "would remove" if args.dry_run else "removed"
    print("%s %d blocks (%d bytes), %d live"
          % (verb, result.removed_blocks, result.freed_bytes,
             result.live_blocks))
    if args.prune_snapshots:
        print("%s %d snapshot checkpoints (%d roots kept)"
              % (verb, result.removed_snapshots,
                 len(args.snapshot_root or ())))
    return 0


def _cmd_farm_rebalance(args: argparse.Namespace) -> int:
    from repro.service import ShardedStore

    store = ShardedStore(args.store)
    moved = store.rebalance(shards=args.shards, dry_run=args.dry_run)
    verb = "would move" if args.dry_run else "moved"
    print("%s %d blocks (%d bytes), %d records across %d shards"
          % (verb, moved.moved_blocks, moved.moved_bytes,
             moved.moved_records, len(store.shards)))
    return 0


def _cmd_farm_scrub(args: argparse.Namespace) -> int:
    from repro.service import ShardedStore

    report = ShardedStore(args.store).scrub()
    print("scrubbed %d objects (%d blocks): %d block repairs, "
          "%d record repairs, %d lost"
          % (report.objects, report.blocks_checked, report.repaired_blocks,
             report.repaired_records, len(report.lost_keys)))
    for key in report.lost_keys:
        print("  LOST %s" % key)
    return 1 if report.lost_keys else 0


def _cmd_service_start(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import serve

    try:
        asyncio.run(serve(args.store, shards=args.shards, host=args.host,
                          port=args.port, lease_timeout=args.lease_timeout,
                          max_queued=args.max_queued, retries=args.retries))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_service_worker(args: argparse.Namespace) -> int:
    from repro.service import worker_main

    done = worker_main(args.host, args.port, name=args.name,
                       poll_s=args.poll, idle_exit_s=args.idle_exit,
                       drain_timeout_s=args.drain_timeout)
    sys.stderr.write("worker exiting after %d jobs\n" % done)
    return 0


def _cmd_service_submit(args: argparse.Namespace) -> int:
    from repro.service import connect, run_service_campaign

    images = _campaign_images(args)
    validations = _campaign_validations(args)
    with connect(args.host, args.port, client_id=args.client) as client:
        outcomes = run_service_campaign(
            images, client,
            manifest_path=args.manifest,
            priority=args.priority,
            slice_size=args.slice_size,
            warmup=args.warmup,
            max_k=args.max_k,
            max_alternates=args.alternates,
            seed=args.seed,
            validations=validations,
        )
    return _report_campaign(outcomes, args.manifest)


def _cmd_service_status(args: argparse.Namespace) -> int:
    from repro.service import connect

    with connect(args.host, args.port) as client:
        stats = client.stats(store=args.store)
    stats.pop("ok", None)
    stats.pop("id", None)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    from repro.farm import open_store
    from repro.machine.loader import load_elf
    from repro.machine.machine import Machine
    from repro.snapshot import capture, snapshot_info

    with open(args.binary, "rb") as handle:
        image = handle.read()
    machine = Machine(seed=args.seed)
    load_elf(machine, image, argv=args.argv or None)
    status = machine.run(max_instructions=args.at)
    if status.kind != "stopped":
        sys.stderr.write("workload finished (%s %s) before %d instructions; "
                         "nothing to suspend\n"
                         % (status.kind, status.detail, args.at))
        return 1
    snapshot = capture(machine, extra={"kind": "cli",
                                       "binary": args.binary,
                                       "seed": args.seed})
    store = open_store(args.store)
    store.put(args.key, snapshot, kind="snapshot")
    info = snapshot_info(snapshot)
    print("saved %s at %d instructions (%d pages, %d bytes, digest %s)"
          % (args.key, info["executed_total"], info["pages"],
             info["memory_bytes"], info["digest"][:16]))
    return 0


def _cmd_snapshot_resume(args: argparse.Namespace) -> int:
    from repro.farm import open_store
    from repro.snapshot import restore, snapshot_info

    store = open_store(args.store)
    if not store.contains(args.key):
        sys.stderr.write("no snapshot %r in %s\n" % (args.key, args.store))
        return 1
    snapshot = store.get(args.key)
    info = snapshot_info(snapshot)
    machine = restore(snapshot)
    before = machine.executed_total
    if args.steps:
        status = machine.run(max_instructions=before + args.steps)
    else:
        status = machine.run()
    print("resumed %s from %d instructions (digest %s)"
          % (args.key, before, info["digest"][:16]))
    print("status: %s %s" % (status.kind, status.detail))
    print("instructions: %d (+%d since resume)"
          % (machine.executed_total, machine.executed_total - before))
    if status.kind == "exit":
        return status.code
    return 0 if status.kind == "stopped" else 128


def _cmd_snapshot_info(args: argparse.Namespace) -> int:
    from repro.farm import open_store
    from repro.snapshot import snapshot_info

    store = open_store(args.store)
    if not store.contains(args.key):
        sys.stderr.write("no snapshot %r in %s\n" % (args.key, args.store))
        return 1
    print(json.dumps(snapshot_info(store.get(args.key)), indent=2,
                     sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.core.cli",
        description="pinball2elf tool-chain command line",
    )
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(load in chrome://tracing or Perfetto)")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write a JSON metrics snapshot of the run")
    sub = parser.add_subparsers(dest="command", required=True)

    p2e = sub.add_parser("pinball2elf", help="convert a pinball to an ELFie")
    p2e.add_argument("--pinball", required=True, help="DIR/NAME prefix")
    p2e.add_argument("--out", required=True, help="output file")
    p2e.add_argument("--object", action="store_true",
                     help="emit a relocatable object + linker script")
    p2e.add_argument("--roi-start", metavar="[TYPE:]TAG",
                     help="insert a ROI marker (sniper|ssc|simics)")
    p2e.add_argument("--perf-exit", action="store_true",
                     help="arm graceful-exit hardware counters (-t/-p)")
    p2e.add_argument("--monitor", action="store_true",
                     help="create a monitor thread (-e elfie_on_exit)")
    p2e.add_argument("--sysstate", action="store_true",
                     help="embed FD_n preopens and brk restore")
    p2e.add_argument("--dump-contexts", action="store_true",
                     help="also write a .ctx.s context listing")
    p2e.add_argument("--no-stack-fix", action="store_true",
                     help="ablation: allocatable stack sections (Fig. 4)")
    p2e.set_defaults(func=_cmd_pinball2elf)

    sysstate = sub.add_parser("sysstate",
                              help="pinball_sysstate analysis report")
    sysstate.add_argument("--pinball", required=True)
    sysstate.set_defaults(func=_cmd_sysstate)

    rep = sub.add_parser("replay", help="replay a pinball")
    rep.add_argument("--pinball", required=True)
    rep.add_argument("--injection", type=int, default=1,
                     help="0 mimics an ELFie run (-replay:injection 0)")
    rep.set_defaults(func=_cmd_replay)

    logger = sub.add_parser("logger", help="capture a region as a pinball")
    logger.add_argument("--binary", required=True, help="PX ELF executable")
    logger.add_argument("--start", type=int, required=True)
    logger.add_argument("--length", type=int, required=True)
    logger.add_argument("--warmup", type=int, default=0)
    logger.add_argument("--name", default="pinball")
    logger.add_argument("--out", default=".")
    logger.add_argument("--fat", action="store_true", default=True)
    logger.add_argument("--no-fat", dest="fat", action="store_false")
    logger.set_defaults(func=_cmd_logger)

    runner = sub.add_parser("run", help="run an ELFie natively")
    runner.add_argument("elfie")
    runner.add_argument("--seed", type=int, default=0)
    runner.set_defaults(func=_cmd_run)

    verify = sub.add_parser(
        "verify", help="differential replay-fidelity verification")
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)

    verify_run = verify_sub.add_parser(
        "run", help="epoch-digest native vs replay; bisect divergence")
    verify_run.add_argument("--pinball", required=True, help="DIR/NAME prefix")
    verify_run.add_argument("--binary", required=True,
                            help="the original PX ELF the pinball came from")
    verify_run.add_argument("--seed", type=int, default=0)
    verify_run.add_argument("--epochs", type=int, default=16)
    verify_run.add_argument("--no-bisect", action="store_true",
                            help="stop at the first bad epoch without "
                                 "localizing the divergent instruction")
    verify_run.add_argument("--json", metavar="FILE", default=None,
                            help="write the fidelity report as JSON")
    verify_run.add_argument("--dispatch", default=None,
                            choices=("slow", "block", "chain", "compiled"),
                            help="pin the interpreter dispatch tier for "
                                 "every machine in the verification")
    verify_run.set_defaults(func=_cmd_verify_run)

    verify_fuzz = verify_sub.add_parser(
        "fuzz", help="randomized record->replay->elfie round-trips")
    verify_fuzz.add_argument("--time-budget", type=float, default=30.0,
                             metavar="SECONDS")
    verify_fuzz.add_argument("--start-seed", type=int, default=0)
    verify_fuzz.add_argument("--max-cases", type=int, default=None)
    verify_fuzz.add_argument("--seed", type=int, default=0,
                             help="machine seed for the round-trips")
    verify_fuzz.add_argument("--no-minimize", action="store_true")
    verify_fuzz.add_argument("--save-failures", action="store_true",
                             help="pin minimized failing seeds to the corpus")
    verify_fuzz.add_argument("--corpus", default=None,
                             help="corpus directory (default tests/corpus)")
    verify_fuzz.add_argument("--checkpoint", metavar="FILE", default=None,
                             help="persist fuzz progress here; a preempted "
                                  "run resumes from the last finished case")
    verify_fuzz.add_argument("--dispatch", default=None,
                             choices=("slow", "block", "chain", "compiled"),
                             help="pin the dispatch tier for every machine "
                                  "and cross-check it against the slow "
                                  "loop per case")
    verify_fuzz.set_defaults(func=_cmd_verify_fuzz)

    verify_lockstep = verify_sub.add_parser(
        "lockstep", help="straight vs suspend/resume digest lockstep over "
                         "the corpus + MT fuzzer cases")
    verify_lockstep.add_argument("--corpus", default=None,
                                 help="corpus directory "
                                      "(default tests/corpus)")
    verify_lockstep.add_argument("--seed", type=int, default=0)
    verify_lockstep.add_argument("--hops", type=int, default=2,
                                 help="suspend/resume round-trips per "
                                      "workload")
    verify_lockstep.add_argument("--hop-seed", type=int, default=0,
                                 help="seed for the pseudo-random suspend "
                                      "points")
    verify_lockstep.add_argument("--mt-cases", type=int, default=2,
                                 help="generated multithreaded workloads to "
                                      "include")
    verify_lockstep.add_argument("--epochs", type=int, default=16)
    verify_lockstep.set_defaults(func=_cmd_verify_lockstep)

    verify_corpus = verify_sub.add_parser(
        "corpus", help="deterministically replay the regression corpus")
    verify_corpus.add_argument("--corpus", default=None,
                               help="corpus directory (default tests/corpus)")
    verify_corpus.add_argument("--seed", type=int, default=0)
    verify_corpus.set_defaults(func=_cmd_verify_corpus)

    verify_aslr = verify_sub.add_parser(
        "aslr", help="base-invariance gate: select a region at the link "
                     "base, capture and replay it at a slid base, and "
                     "require identical architectural work")
    verify_aslr.add_argument("--cases", type=int, default=4,
                             help="generated workloads to push through the "
                                  "two-base check")
    verify_aslr.add_argument("--start-seed", type=int, default=0)
    verify_aslr.add_argument("--aslr-seed", type=int, default=7,
                             help="slide seed for the slid capture")
    verify_aslr.add_argument("--seed", type=int, default=0,
                             help="machine seed for the round-trips")
    verify_aslr.set_defaults(func=_cmd_verify_aslr)

    looppoint = sub.add_parser(
        "looppoint",
        help="loop-marker region selection for multi-threaded workloads")
    looppoint_sub = looppoint.add_subparsers(dest="looppoint_command",
                                             required=True)

    def _looppoint_common(parser: argparse.ArgumentParser) -> None:
        target = parser.add_mutually_exclusive_group(required=True)
        target.add_argument("--binary", help="PX ELF executable to analyse")
        target.add_argument("--app", help="suite app name, e.g. mt.prodcons")
        parser.add_argument("--input", default="train",
                            choices=("test", "train", "ref"))
        parser.add_argument("--slice-markers", type=int, default=64,
                            help="work-marker crossings per slice")
        parser.add_argument("--seed", type=int, default=0)

    lp_profile = looppoint_sub.add_parser(
        "profile", help="harvest loop markers and profile marker slices")
    _looppoint_common(lp_profile)
    lp_profile.add_argument("--markers-out", default=None,
                            help="write the module+offset marker map JSON")
    lp_profile.set_defaults(func=_cmd_looppoint_profile)

    lp_select = looppoint_sub.add_parser(
        "select", help="cluster marker slices and pick representatives")
    _looppoint_common(lp_select)
    lp_select.add_argument("--max-k", type=int, default=12)
    lp_select.add_argument("--cluster-seed", type=int, default=42)
    lp_select.add_argument("--warmup-slices", type=int, default=1,
                           help="warmup depth in whole marker slices")
    lp_select.add_argument("--alternates", type=int, default=2)
    lp_select.add_argument("--json", default=None,
                           help="write the region list (with marker "
                                "windows) as JSON")
    lp_select.set_defaults(func=_cmd_looppoint_select)

    lp_validate = looppoint_sub.add_parser(
        "validate", help="capture marker-delimited ELFies and check the "
                         "predicted-vs-true CPI error")
    _looppoint_common(lp_validate)
    lp_validate.add_argument("--max-k", type=int, default=12)
    lp_validate.add_argument("--cluster-seed", type=int, default=42)
    lp_validate.add_argument("--warmup-slices", type=int, default=1,
                             help="warmup depth in whole marker slices")
    lp_validate.add_argument("--alternates", type=int, default=2)
    lp_validate.add_argument("--validate-seed", type=int, default=0)
    lp_validate.add_argument("--trials", type=int, default=1)
    lp_validate.add_argument("--max-error", type=float, default=100.0,
                             help="exit nonzero if |error%%| exceeds this")
    lp_validate.set_defaults(func=_cmd_looppoint_validate)

    farm = sub.add_parser(
        "farm", help="checkpoint farm: cached, parallel PinPoints campaigns")
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)

    farm_run = farm_sub.add_parser(
        "run", help="run PinPoints campaigns through the artifact store")
    farm_run.add_argument("--store", default=".farm",
                          help="artifact store directory (default .farm)")
    farm_run.add_argument("--app", action="append", required=True,
                          help="suite app name (repeatable), e.g. 502.gcc_r")
    farm_run.add_argument("--input", default="train",
                          choices=("test", "train", "ref"))
    farm_run.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: cpu count)")
    farm_run.add_argument("--selector", default="bbv-simpoint",
                          choices=("bbv-simpoint", "looppoint"),
                          help="region-selection strategy: BBV SimPoint "
                               "slices or loop-marker LoopPoint regions")
    farm_run.add_argument("--slice-size", type=int, default=20_000,
                          help="instructions per slice (bbv-simpoint)")
    farm_run.add_argument("--slice-markers", type=int, default=64,
                          help="work-marker crossings per slice (looppoint)")
    farm_run.add_argument("--warmup", type=int, default=80_000,
                          help="warmup icount before each region "
                               "(bbv-simpoint)")
    farm_run.add_argument("--warmup-slices", type=int, default=1,
                          help="warmup depth in whole marker slices "
                               "(looppoint)")
    farm_run.add_argument("--max-k", type=int, default=12)
    farm_run.add_argument("--alternates", type=int, default=2)
    farm_run.add_argument("--seed", type=int, default=0)
    farm_run.add_argument("--validate-seed", type=int, default=0)
    farm_run.add_argument("--trials", type=int, default=1)
    farm_run.add_argument("--manifest", default=None,
                          help="write a JSON-lines run manifest here")
    farm_run.add_argument("--verify-fidelity", action="store_true",
                          help="also run the differential replay-fidelity "
                               "verifier over each captured region")
    farm_run.add_argument("--fidelity-regions", type=int, default=None,
                          metavar="N",
                          help="verify at most N regions per app")
    farm_run.add_argument("--shards", type=int, default=0, metavar="N",
                          help="create/open the store sharded across N "
                               "roots (default: plain single-root store)")
    farm_run.add_argument("--preemptible", action="store_true",
                          help="checkpoint running jobs on SIGTERM and exit "
                               "75; rerun the same command to resume")
    farm_run.set_defaults(func=_cmd_farm_run)

    farm_stats = farm_sub.add_parser("stats",
                                     help="artifact store statistics")
    farm_stats.add_argument("--store", default=".farm")
    farm_stats.add_argument("--json", action="store_true",
                            help="pure JSON output (no stderr summary)")
    farm_stats.set_defaults(func=_cmd_farm_stats)

    farm_gc = farm_sub.add_parser(
        "gc", help="sweep unreferenced blocks from the store")
    farm_gc.add_argument("--store", default=".farm")
    farm_gc.add_argument("--dry-run", action="store_true",
                         help="report what would be swept without deleting")
    farm_gc.add_argument("--prune-snapshots", action="store_true",
                         help="also drop checkpoint artifacts not named "
                              "by --snapshot-root")
    farm_gc.add_argument("--snapshot-root", action="append", default=None,
                         metavar="KEY",
                         help="snapshot key to keep (repeatable); resumable "
                              "jobs' checkpoints are roots")
    farm_gc.set_defaults(func=_cmd_farm_gc)

    farm_rebalance = farm_sub.add_parser(
        "rebalance", help="re-ring a sharded store (grow/shrink/heal)")
    farm_rebalance.add_argument("--store", default=".farm")
    farm_rebalance.add_argument("--shards", type=int, default=None,
                                metavar="N", help="new shard count "
                                "(default: canonicalize the current ring)")
    farm_rebalance.add_argument("--dry-run", action="store_true",
                                help="report what would move")
    farm_rebalance.set_defaults(func=_cmd_farm_rebalance)

    farm_scrub = farm_sub.add_parser(
        "scrub", help="verify + read-repair every artifact across shards")
    farm_scrub.add_argument("--store", default=".farm")
    farm_scrub.set_defaults(func=_cmd_farm_scrub)

    service = sub.add_parser(
        "service", help="networked checkpoint farm: server, workers, "
                        "campaign submission")
    service_sub = service.add_subparsers(dest="service_command",
                                         required=True)

    service_start = service_sub.add_parser(
        "start", help="run the checkpoint service in the foreground")
    service_start.add_argument("--store", default=".farm")
    service_start.add_argument("--shards", type=int, default=0, metavar="N",
                               help="shard the store across N roots")
    service_start.add_argument("--host", default="127.0.0.1")
    service_start.add_argument("--port", type=int, default=7461)
    service_start.add_argument("--lease-timeout", type=float, default=30.0,
                               help="seconds before a silent worker's "
                                    "lease is re-queued")
    service_start.add_argument("--max-queued", type=int, default=1024)
    service_start.add_argument("--retries", type=int, default=2)
    service_start.set_defaults(func=_cmd_service_start)

    service_worker = service_sub.add_parser(
        "worker", help="run one pull-based service worker")
    service_worker.add_argument("--host", default="127.0.0.1")
    service_worker.add_argument("--port", type=int, default=7461)
    service_worker.add_argument("--name", default="")
    service_worker.add_argument("--poll", type=float, default=2.0,
                                help="lease long-poll seconds")
    service_worker.add_argument("--idle-exit", type=float, default=0.0,
                                help="exit after this many idle seconds "
                                     "(0 = run forever)")
    service_worker.add_argument("--drain-timeout", type=float, default=30.0,
                                help="seconds after SIGTERM before the "
                                     "in-flight lease is abandoned and the "
                                     "worker force-exits (0 = wait forever)")
    service_worker.set_defaults(func=_cmd_service_worker)

    service_submit = service_sub.add_parser(
        "submit", help="run a PinPoints campaign through the service")
    service_submit.add_argument("--host", default="127.0.0.1")
    service_submit.add_argument("--port", type=int, default=7461)
    service_submit.add_argument("--client", default="",
                                help="client id for fair-share accounting")
    service_submit.add_argument("--priority", type=int, default=0)
    service_submit.add_argument("--app", action="append", required=True,
                                help="suite app name (repeatable)")
    service_submit.add_argument("--input", default="train",
                                choices=("test", "train", "ref"))
    service_submit.add_argument("--slice-size", type=int, default=20_000)
    service_submit.add_argument("--warmup", type=int, default=80_000)
    service_submit.add_argument("--max-k", type=int, default=12)
    service_submit.add_argument("--alternates", type=int, default=2)
    service_submit.add_argument("--seed", type=int, default=0)
    service_submit.add_argument("--validate-seed", type=int, default=0)
    service_submit.add_argument("--trials", type=int, default=1)
    service_submit.add_argument("--manifest", default=None,
                                help="write a JSON-lines run manifest here")
    service_submit.add_argument("--verify-fidelity", action="store_true")
    service_submit.add_argument("--fidelity-regions", type=int,
                                default=None, metavar="N")
    service_submit.set_defaults(func=_cmd_service_submit)

    service_status = service_sub.add_parser(
        "status", help="print scheduler (and optionally store) stats")
    service_status.add_argument("--host", default="127.0.0.1")
    service_status.add_argument("--port", type=int, default=7461)
    service_status.add_argument("--store", action="store_true",
                                help="include per-shard store statistics")
    service_status.set_defaults(func=_cmd_service_status)

    snapshot = sub.add_parser(
        "snapshot", help="suspend, resume, and inspect machine checkpoints")
    snapshot_sub = snapshot.add_subparsers(dest="snapshot_command",
                                           required=True)

    snapshot_save = snapshot_sub.add_parser(
        "save", help="run a PX ELF to an instruction count and checkpoint")
    snapshot_save.add_argument("--binary", required=True,
                               help="PX ELF executable")
    snapshot_save.add_argument("--at", type=int, required=True,
                               help="suspend after this many instructions")
    snapshot_save.add_argument("--key", required=True,
                               help="store key for the checkpoint")
    snapshot_save.add_argument("--store", default=".farm")
    snapshot_save.add_argument("--seed", type=int, default=0)
    snapshot_save.add_argument("--argv", action="append", default=None,
                               help="guest argv entry (repeatable)")
    snapshot_save.set_defaults(func=_cmd_snapshot_save)

    snapshot_resume = snapshot_sub.add_parser(
        "resume", help="restore a checkpoint and continue running")
    snapshot_resume.add_argument("--key", required=True)
    snapshot_resume.add_argument("--store", default=".farm")
    snapshot_resume.add_argument("--steps", type=int, default=0,
                                 help="run at most this many more "
                                      "instructions (0 = to completion)")
    snapshot_resume.set_defaults(func=_cmd_snapshot_resume)

    snapshot_info = snapshot_sub.add_parser(
        "info", help="print a checkpoint's JSON summary")
    snapshot_info.add_argument("--key", required=True)
    snapshot_info.add_argument("--store", default=".farm")
    snapshot_info.set_defaults(func=_cmd_snapshot_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics):
        return args.func(args)
    obs = hooks.enable()
    try:
        return args.func(args)
    finally:
        hooks.disable()
        if args.trace:
            obs.tracer.export(args.trace)
            sys.stderr.write("wrote trace %s\n" % args.trace)
        if args.metrics:
            obs.metrics.export(args.metrics)
            sys.stderr.write("wrote metrics %s\n" % args.metrics)


if __name__ == "__main__":
    sys.exit(main())
