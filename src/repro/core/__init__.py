"""The paper's primary contribution: pinball -> ELFie conversion.

- :mod:`repro.core.pinball2elf` -- the converter itself (executable and
  object output, stack-collision handling, context packing),
- :mod:`repro.core.startup` -- the PX startup-code generator (stack
  remap, sysstate preopen, clone loop, XRSTOR context restore,
  per-thread entry stubs),
- :mod:`repro.core.callbacks` -- the ``libperfle`` callback library
  (hardware-counter graceful exit, counter printing, monitor thread),
- :mod:`repro.core.markers` -- ROI marker injection for simulators,
- :mod:`repro.core.symbols` -- ``.t<N>.<object>`` debug symbols,
- :mod:`repro.core.elfie` -- the ELFie run harness.
"""

from repro.core.pinball2elf import Pinball2Elf, Pinball2ElfOptions, ElfieArtifact
from repro.core.markers import MarkerSpec, marker_tag, decode_marker
from repro.core.elfie import ElfieRun, run_elfie, prepare_elfie_machine
from repro.core.callbacks import PERFLE_CALLBACK_TAIL

__all__ = [
    "Pinball2Elf",
    "Pinball2ElfOptions",
    "ElfieArtifact",
    "MarkerSpec",
    "marker_tag",
    "decode_marker",
    "ElfieRun",
    "run_elfie",
    "prepare_elfie_machine",
    "PERFLE_CALLBACK_TAIL",
]
