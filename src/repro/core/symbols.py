"""Debug-symbol generation for ELFies (paper §II-B5, "Debugging ELFies").

``pinball2elf`` inserts symbols for all startup-code functions, for the
elements of each thread's initial state in the ``.t<N>.<object>``
format (e.g. ``.t0.rax``, ``.t0.ext_area``), and for the start of each
thread (``.t<N>.start``), so hex-level debugging of an ELFie has
anchors even though application-level symbolic debugging is not
supported.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.startup import StartupPlan
from repro.elf.structs import STT_FUNC, STT_OBJECT
from repro.elf.writer import ElfBuilder
from repro.pinplay.pinball import Pinball


def add_elfie_symbols(builder: ElfBuilder, pinball: Pinball,
                      plan: StartupPlan,
                      labels: Dict[str, int]) -> List[Tuple[str, int]]:
    """Add pinball2elf's standard symbols to *builder*.

    *labels* maps assembler labels in the startup blob to absolute
    addresses.  Returns the (name, value) pairs added, for listings.
    """
    added: List[Tuple[str, int]] = []

    def add(name: str, value: int, sym_type: int = STT_OBJECT) -> None:
        builder.add_symbol(name, value, sym_type=sym_type)
        added.append((name, value))

    for label in plan.symbol_labels:
        if label in labels:
            add(label, labels[label], sym_type=STT_FUNC)
    for name, ctx_label, offset in plan.context_symbols:
        if ctx_label in labels:
            add(name, labels[ctx_label] + offset)
    for position, record in enumerate(sorted(pinball.threads,
                                             key=lambda r: r.tid)):
        add(".t%d.start" % position, record.regs.rip, sym_type=STT_FUNC)
        add(".t%d.rsp_target" % position, record.regs.rsp)
    return added
