"""ROI marker injection (paper §II-B5, "Marker Support").

``pinball2elf --roi-start [TYPE:]TAG`` inserts a special marker
instruction just before the startup code jumps to application code, so
analysis tools and simulators can skip the startup.  The paper supports
three marker dialects — Sniper, SSC (Pintools), and Simics magic
instructions.  On PX all three map onto the architectural ``MARKER
imm32`` instruction with a per-dialect tag namespace (x86 uses
different nop/cpuid encodings for the same purpose):

- sniper: tag used as-is (must fit 24 bits),
- ssc:    ``0x55000000 | tag`` (24-bit tag),
- simics: ``0x51340000 | tag`` (16-bit tag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

_SSC_PREFIX = 0x55000000
_SIMICS_PREFIX = 0x51340000

MARKER_TYPES = ("sniper", "ssc", "simics")

#: Default ROI-start tag used when callers don't pick one.
DEFAULT_ROI_TAG = 0xBEEF


@dataclass(frozen=True)
class MarkerSpec:
    """A parsed ``--roi-start [TYPE:]TAG`` option."""

    marker_type: str = "sniper"
    tag: int = DEFAULT_ROI_TAG

    def __post_init__(self) -> None:
        if self.marker_type not in MARKER_TYPES:
            raise ValueError("unknown marker type %r (one of %s)"
                             % (self.marker_type, ", ".join(MARKER_TYPES)))
        limit = 0xFFFF if self.marker_type == "simics" else 0xFFFFFF
        if not 0 <= self.tag <= limit:
            raise ValueError("marker tag 0x%x out of range for %s"
                             % (self.tag, self.marker_type))

    @classmethod
    def parse(cls, text: str) -> "MarkerSpec":
        """Parse "TYPE:TAG" or bare "TAG" (type defaults to sniper)."""
        if ":" in text:
            type_text, tag_text = text.split(":", 1)
            return cls(marker_type=type_text.strip(),
                       tag=int(tag_text.strip(), 0))
        return cls(tag=int(text.strip(), 0))

    def encoded_tag(self) -> int:
        """The imm32 value carried by the MARKER instruction."""
        return marker_tag(self.marker_type, self.tag)

    def assembly(self) -> str:
        """The marker as one line of PX assembly."""
        return "marker 0x%x" % self.encoded_tag()


def marker_tag(marker_type: str, tag: int) -> int:
    """Encode (type, tag) into the MARKER imm32 namespace."""
    if marker_type == "sniper":
        return tag
    if marker_type == "ssc":
        return _SSC_PREFIX | (tag & 0xFFFFFF)
    if marker_type == "simics":
        return _SIMICS_PREFIX | (tag & 0xFFFF)
    raise ValueError("unknown marker type %r" % marker_type)


def decode_marker(value: int) -> Tuple[str, int]:
    """Inverse of :func:`marker_tag`: (type, tag) from an imm32 value."""
    value &= 0xFFFFFFFF
    if value & 0xFF000000 == _SSC_PREFIX:
        return "ssc", value & 0xFFFFFF
    if value & 0xFFFF0000 == _SIMICS_PREFIX:
        return "simics", value & 0xFFFF
    return "sniper", value


def matches(value: int, spec: Optional[MarkerSpec]) -> bool:
    """Does a MARKER operand match *spec* (any marker when spec is None)?"""
    if spec is None:
        return True
    return (value & 0xFFFFFFFF) == spec.encoded_tag()
