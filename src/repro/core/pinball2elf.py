"""pinball2elf: convert a pinball into a stand-alone ELF binary (§II-B).

The conversion follows the paper's mapping (Fig. 3):

- each run of consecutive captured pages becomes an ELF section at its
  original virtual address (``.text.<addr>`` for executable runs,
  ``.data.<addr>`` otherwise),
- the pinball's program-stack pages become **non-allocatable**
  ``.stack.<addr>`` sections, so the system loader never maps them and
  the new process stack can be placed freely (the stack-collision fix,
  Fig. 4); their contents travel in an allocatable staging section the
  startup code copies back,
- per-thread register contexts are packed into a data section placed in
  an address range the pinball does not use,
- a generated startup-code section at the entry point remaps the stack,
  restores OS state (sysstate), creates threads, restores contexts, and
  jumps to the captured code.

Executable output is statically linked and self-contained.  Object
output (``--object``) emits the pinball sections and symbols only, plus
a linker script preserving the memory layout so users control the final
link against their own callback code (§II-B5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.elf.linkscript import LinkerRegion, LinkerScript
from repro.elf.structs import ET_EXEC, ET_REL, SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE
from repro.elf.writer import ElfBuilder
from repro.isa.assembler import Assembler
from repro.machine.memory import PAGE_SIZE, PROT_EXEC, PROT_RWX
from repro.core.markers import MarkerSpec
from repro.core.startup import StartupGenerator, StartupPlan
from repro.core.symbols import add_elfie_symbols
from repro.pinplay.pinball import Pinball
from repro.pinplay.sysstate import SysState

#: Candidate load addresses for the startup blob; the first that does
#: not overlap any pinball page wins.
_STARTUP_BASES = (0x10000000, 0x20000000, 0x30000000, 0x48000000,
                  0x68000000, 0x200000000)


@dataclass
class Pinball2ElfOptions:
    """Conversion options (the pinball2elf command line)."""

    #: "executable" or "object".
    output: str = "executable"
    #: --roi-start [TYPE:]TAG marker inserted before application code.
    marker: Optional[MarkerSpec] = None
    #: Link libperfle callbacks and arm the graceful-exit counters
    #: (the -t/-p wrapper scripts' common configuration).
    perf_exit: bool = False
    #: Multiplier on each thread's armed instruction budget.  1.0 exits
    #: exactly at the captured per-thread counts; marker-bounded regions
    #: (LoopPoint) use > 1 so a replay under a shifted schedule is not
    #: cut off before its work-marker crossings complete.
    perf_exit_slack: float = 1.0
    #: -e elfie_on_exit: create a monitor thread that watches for
    #: application exit and then runs elfie_on_exit.
    monitor: bool = False
    #: Embedded sysstate (FD_n preopens + brk restore).
    sysstate: Optional[SysState] = None
    #: Extra PX assembly linked into the startup section; may define
    #: elfie_on_start / elfie_on_thread_start / elfie_on_exit.
    user_code: Optional[str] = None
    #: Which callback labels user_code defines.
    user_defines: Tuple[str, ...] = ()
    #: Also produce an assembly listing of initial thread contexts.
    dump_contexts: bool = False
    #: The stack-collision fix (paper §II-B3): mark the pinball's stack
    #: pages non-allocatable and remap them in startup code.  Disabling
    #: this (the ablation) emits the stack as ordinary allocatable
    #: sections, which can collide with the loader's randomized stack
    #: and kill the process before any ELFie code runs (Fig. 4).
    stack_fix: bool = True


@dataclass
class ElfieArtifact:
    """The result of a conversion."""

    image: bytes
    e_type: int
    entry: int
    startup_base: int
    plan: Optional[StartupPlan]
    linker_script: Optional[str] = None
    context_listing: Optional[str] = None
    symbols: List[Tuple[str, int]] = field(default_factory=list)

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.image)
        if self.linker_script is not None:
            with open(path + ".lds", "w") as handle:
                handle.write(self.linker_script)
        if self.context_listing is not None:
            with open(path + ".ctx.s", "w") as handle:
                handle.write(self.context_listing)


class Pinball2Elf:
    """Converter bound to one pinball."""

    def __init__(self, pinball: Pinball,
                 options: Optional[Pinball2ElfOptions] = None) -> None:
        if not pinball.whole_image or not pinball.pages_early:
            # Matching the paper: ELFies are generated from fat pinballs;
            # a lazy pinball lacks pages and produces fragile ELFies.
            # We allow it (for the ablation study) but it is on the user.
            pass
        self.pinball = pinball
        self.options = options or Pinball2ElfOptions()

    # -- page runs -----------------------------------------------------------

    def page_runs(self) -> List[Tuple[int, int, int]]:
        """Maximal (start, end, prot) runs of captured pages."""
        runs: List[Tuple[int, int, int]] = []
        addrs = sorted(self.pinball.pages)
        if not addrs:
            return runs
        run_start = addrs[0]
        prev = addrs[0]
        prot = self.pinball.pages[addrs[0]][0]
        for addr in addrs[1:]:
            page_prot = self.pinball.pages[addr][0]
            if addr == prev + PAGE_SIZE and page_prot == prot:
                prev = addr
                continue
            runs.append((run_start, prev + PAGE_SIZE, prot))
            run_start = addr
            prev = addr
            prot = page_prot
        runs.append((run_start, prev + PAGE_SIZE, prot))
        return runs

    def _run_bytes(self, start: int, end: int) -> bytes:
        out = bytearray()
        addr = start
        while addr < end:
            out += self.pinball.pages[addr][1]
            addr += PAGE_SIZE
        return bytes(out)

    def _section_name(self, start: int, prot: int, is_stack: bool) -> str:
        if is_stack:
            return ".stack.%x" % start
        if prot & PROT_EXEC:
            return ".text.%x" % start
        return ".data.%x" % start

    # -- conversion -----------------------------------------------------------

    def to_object(self) -> ElfieArtifact:
        """Emit a relocatable ELF object plus a linker script (§II-B5)."""
        builder = ElfBuilder(e_type=ET_REL)
        stack_start, stack_end = self.pinball.try_stack_range() or (0, 0)
        regions: List[LinkerRegion] = []
        for start, end, prot in self.page_runs():
            is_stack = stack_start <= start < stack_end
            name = self._section_name(start, prot, is_stack)
            flags = SHF_ALLOC if not is_stack else 0
            if prot & 2:
                flags |= SHF_WRITE
            if prot & PROT_EXEC:
                flags |= SHF_EXECINSTR
            builder.add_section(name, self._run_bytes(start, end),
                                addr=start, flags=flags, prot=prot,
                                align=PAGE_SIZE)
            regions.append(LinkerRegion(name, start, end - start))
        plan = StartupPlan()
        for position, record in enumerate(
                sorted(self.pinball.threads, key=lambda r: r.tid)):
            builder.add_symbol(".t%d.start" % position, record.regs.rip)
        script = LinkerScript(entry_symbol="_elfie_start", regions=regions,
                              user_code_base=self._pick_startup_base(1 << 20))
        listing = self.context_listing() if self.options.dump_contexts else None
        return ElfieArtifact(
            image=builder.build(),
            e_type=ET_REL,
            entry=0,
            startup_base=0,
            plan=plan,
            linker_script=script.render(),
            context_listing=listing,
        )

    def to_executable(self) -> ElfieArtifact:
        """Emit the statically linked, self-contained ELFie executable."""
        options = self.options
        generator = StartupGenerator(
            self.pinball,
            marker=options.marker,
            perf_exit=options.perf_exit,
            perf_exit_slack=options.perf_exit_slack,
            with_monitor=options.monitor,
            sysstate=options.sysstate,
            user_code=options.user_code,
            user_defines=options.user_defines,
            remap_stack=options.stack_fix,
        )
        # Assemble the startup blob at a base clear of pinball pages.
        # Size depends only on content, not base, so assemble once at a
        # probe base to size it, then at the real base.
        probe = Assembler(base=0)
        plan = generator.emit(probe)
        blob_size = probe.current_offset
        base = self._pick_startup_base(blob_size)
        generator = StartupGenerator(
            self.pinball,
            marker=options.marker,
            perf_exit=options.perf_exit,
            perf_exit_slack=options.perf_exit_slack,
            with_monitor=options.monitor,
            sysstate=options.sysstate,
            user_code=options.user_code,
            user_defines=options.user_defines,
            remap_stack=options.stack_fix,
        )
        asm = Assembler(base=base)
        plan = generator.emit(asm)
        program = asm.assemble()

        builder = ElfBuilder(e_type=ET_EXEC, entry=program.labels["_elfie_start"])
        stack_start, stack_end = self.pinball.try_stack_range() or (0, 0)
        if not options.stack_fix:
            stack_start, stack_end = 0, 0  # stack emitted as plain data
        for start, end, prot in self.page_runs():
            is_stack = stack_start <= start < stack_end
            name = self._section_name(start, prot, is_stack)
            flags = 0 if is_stack else SHF_ALLOC
            if prot & 2:
                flags |= SHF_WRITE
            if prot & PROT_EXEC:
                flags |= SHF_EXECINSTR
            builder.add_section(name, self._run_bytes(start, end),
                                addr=start, flags=flags, prot=prot,
                                align=PAGE_SIZE)
        builder.add_section(
            ".text.elfie", program.code, addr=base,
            flags=SHF_ALLOC | SHF_WRITE | SHF_EXECINSTR,
            prot=PROT_RWX, align=PAGE_SIZE,
        )
        symbols = add_elfie_symbols(builder, self.pinball, plan,
                                    program.labels)
        listing = self.context_listing() if options.dump_contexts else None
        return ElfieArtifact(
            image=builder.build(),
            e_type=ET_EXEC,
            entry=program.labels["_elfie_start"],
            startup_base=base,
            plan=plan,
            context_listing=listing,
            symbols=symbols,
        )

    def convert(self) -> ElfieArtifact:
        """Run the conversion per ``options.output``."""
        if self.options.output == "object":
            return self.to_object()
        if self.options.output == "executable":
            return self.to_executable()
        raise ValueError("unknown output kind %r" % self.options.output)

    # -- extras ---------------------------------------------------------------

    def context_listing(self) -> str:
        """Assembly listing of initial thread contexts (--dump-contexts)."""
        lines: List[str] = ["; pinball2elf initial thread contexts",
                            "; pinball: %s" % self.pinball.name]
        for position, record in enumerate(
                sorted(self.pinball.threads, key=lambda r: r.tid)):
            regs = record.regs
            lines.append("")
            lines.append(".t%d:" % position)
            for name, value in sorted(regs.to_dict()["gpr"].items()):
                lines.append("    .t%d.%s: .quad 0x%x" % (position, name, value))
            lines.append("    .t%d.rip: .quad 0x%x" % (position, regs.rip))
            lines.append("    .t%d.rflags: .quad 0x%x"
                         % (position, regs.flags.to_word()))
            lines.append("    .t%d.fs_base: .quad 0x%x" % (position, regs.fs_base))
            lines.append("    .t%d.gs_base: .quad 0x%x" % (position, regs.gs_base))
            for index, value in enumerate(regs.xmm):
                lines.append("    .t%d.xmm%d: .double %r" % (position, index, value))
        return "\n".join(lines) + "\n"

    def _pick_startup_base(self, size: int) -> int:
        """First candidate base whose range misses every pinball page."""
        padded = size + 2 * PAGE_SIZE
        for base in _STARTUP_BASES:
            clear = True
            for start, end, _prot in self.page_runs():
                if base < end and start < base + padded:
                    clear = False
                    break
            if clear:
                return base
        raise ValueError("no free address range for the startup section")
