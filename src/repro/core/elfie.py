"""ELFie run harness: load and execute ELFies natively (§II-C).

An ELFie is just a program binary — running one means loading it with
the system ELF loader into a fresh machine and letting it free-run.
The harness adds the conveniences the paper's workflows need:

- a sysstate working directory (chroot-style root) so the region's
  file system calls find their proxy files,
- per-thread *application* instruction counts, measured from each
  thread's ROI entry (the point where startup code jumps into captured
  code, identified by the thread's first retirement of its ``.tN.start``
  address or of the ROI marker),
- capture of the perfle counter output on stderr.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.machine.loader import LoadedImage, LoaderError, load_elf
from repro.machine.machine import ExitStatus, Machine
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.isa.instructions import Op


class _RoiWatcher(Tool):
    """Records each thread's icount when it enters application code."""

    wants_instructions = True

    def __init__(self, roi_rips: Dict[int, int]) -> None:
        #: rip -> expected; any thread retiring a MARKER or one of the
        #: captured start addresses is considered to have entered its ROI.
        self.roi_rips = set(roi_rips.values()) if roi_rips else set()
        self.entry_icount: Dict[int, int] = {}

    def on_instruction(self, machine, thread, pc, insn) -> None:
        if thread.tid in self.entry_icount:
            return
        if insn.op == Op.MARKER or pc in self.roi_rips:
            self.entry_icount[thread.tid] = thread.icount


@dataclass
class ElfieRun:
    """Result of one ELFie execution."""

    machine: Machine
    status: ExitStatus
    loaded: Optional[LoadedImage]
    #: tid -> instructions retired after entering application code.
    app_icounts: Dict[int, int] = field(default_factory=dict)
    #: tid -> icount at ROI entry (startup instructions).
    startup_icounts: Dict[int, int] = field(default_factory=dict)
    stderr: bytes = b""
    stdout: bytes = b""
    loader_error: Optional[str] = None

    @property
    def graceful(self) -> bool:
        return self.status.kind == "exit"

    @property
    def total_app_icount(self) -> int:
        return sum(self.app_icounts.values())

    def perfle_counters(self) -> List[int]:
        """Counter values printed by the perfle exit handler."""
        values = []
        for line in self.stderr.decode("ascii", "replace").splitlines():
            line = line.strip()
            if line.isdigit():
                values.append(int(line))
        return values


def prepare_elfie_machine(image: bytes, seed: int = 0,
                          fs: Optional[FileSystem] = None,
                          workdir: str = "/",
                          stack_seed: Optional[int] = None,
                          ) -> Tuple[Machine, LoadedImage]:
    """Load an ELFie into a fresh machine without running it.

    Simulators use this to take over execution themselves.  Raises
    :class:`LoaderError` (e.g. :class:`StackCollisionError`) like the
    system loader would.
    """
    machine = Machine(seed=seed, fs=fs, root=workdir)
    loaded = load_elf(machine, image, argv=["elfie"], stack_seed=stack_seed)
    return machine, loaded


def run_elfie(image: bytes, seed: int = 0,
              fs: Optional[FileSystem] = None,
              workdir: str = "/",
              max_instructions: Optional[int] = None,
              stack_seed: Optional[int] = None,
              track_roi: bool = True) -> ElfieRun:
    """Execute an ELFie natively and report what happened.

    A loader failure (stack collision) is reported as a run whose
    ``loader_error`` is set and whose status is a SIGKILL-style signal —
    the process died before any ELFie code executed (paper Fig. 4).
    """
    try:
        machine, loaded = prepare_elfie_machine(
            image, seed=seed, fs=fs, workdir=workdir, stack_seed=stack_seed)
    except LoaderError as exc:
        dead = Machine(seed=seed)
        return ElfieRun(
            machine=dead,
            status=ExitStatus(kind="signal", signal=9,
                              detail="killed during load: %s" % exc),
            loaded=None,
            loader_error=str(exc),
        )

    watcher: Optional[_RoiWatcher] = None
    if track_roi:
        roi_rips = {}
        for name, value in loaded.symbols.items():
            if name.startswith(".t") and name.endswith(".start"):
                roi_rips[name] = value
        watcher = _RoiWatcher(roi_rips)
        machine.attach(watcher)

    status = machine.run(max_instructions=max_instructions)

    app_icounts: Dict[int, int] = {}
    startup_icounts: Dict[int, int] = {}
    if watcher is not None:
        machine.detach(watcher)
        for tid, entry in watcher.entry_icount.items():
            thread = machine.threads[tid]
            startup_icounts[tid] = entry
            app_icounts[tid] = thread.icount - entry
    return ElfieRun(
        machine=machine,
        status=status,
        loaded=loaded,
        app_icounts=app_icounts,
        startup_icounts=startup_icounts,
        stderr=machine.stderr(),
        stdout=machine.stdout(),
    )
