"""Suspend/resume lockstep assurance.

The snapshot subsystem's correctness claim is the same shape as the
ELFie's: a run that is suspended, serialized, and resumed must be
*bit-identical* to one that never stopped.  This module checks that
claim with the differential verifier's epoch machinery: a *straight*
cursor runs the workload uninterrupted while a *resumed* cursor runs
the same workload but — at one or more pseudo-randomly chosen (yet
deterministic) instruction counts — suspends itself, round-trips the
machine through the canonical snapshot encoding, restores onto a brand
new machine, and continues.  Per-epoch sha256 digests of architectural
state and memory must agree at every boundary; any mismatch is
localized by the verifier's bisection (which itself time-travels from
the last good epoch's snapshots).

``run_lockstep_case`` applies the check to a fuzzer-generated workload
(including the multithreaded futex cases) and ``lockstep_corpus`` sweeps
the pinned regression corpus — the CI job's suspend/resume gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.machine.loader import load_elf
from repro.machine.machine import ExitStatus, Machine
from repro.machine.vfs import FileSystem
from repro.snapshot.state import MachineSnapshot, capture, restore
from repro.verify.corpus import CorpusCase, corpus_paths, load_corpus_case
from repro.verify.digest import DirtyPageTracker, EpochDigest, epoch_digest
from repro.verify.fuzz import FuzzCase, build_case, generate_case
from repro.verify.verifier import (
    DEFAULT_EPOCHS,
    FidelityReport,
    _fork_fs,
    differential_verify,
)

#: Ceiling for measuring a workload's natural length.
MEASURE_CAP = 2_000_000


class StraightCursor:
    """The uninterrupted reference run, advanced in icount steps."""

    label = "straight"

    def __init__(self, image: bytes, seed: int = 0,
                 fs: Optional[FileSystem] = None,
                 argv: Optional[Sequence[str]] = None,
                 budget: int = MEASURE_CAP) -> None:
        self.machine = Machine(seed=seed, fs=fs)
        load_elf(self.machine, image, argv=argv)
        self.budget = budget
        self.tracker = DirtyPageTracker()
        self.machine.attach(self.tracker)

    @property
    def executed(self) -> int:
        return self.machine.executed_total

    def step(self, target: int) -> ExitStatus:
        return self.machine.run(max_instructions=min(target, self.budget))

    def digest(self, index: int) -> EpochDigest:
        return epoch_digest(self.machine, index, self.executed)

    def structured_divergence(self):
        return None

    def checkpoint(self) -> MachineSnapshot:
        return capture(self.machine, extra={"cursor": self.label,
                                            "budget": self.budget})

    def resume_clone(self, snapshot: MachineSnapshot) -> "StraightCursor":
        cursor = object.__new__(StraightCursor)
        cursor.tracker = DirtyPageTracker()
        cursor.machine = restore(snapshot, tools=[cursor.tracker])
        cursor.budget = snapshot.extra["budget"]
        return cursor


class ResumedCursor(StraightCursor):
    """Same run, but suspended/serialized/restored at each hop icount.

    Every hop round-trips the machine through the canonical snapshot
    bytes (``state_bytes`` + copied pages), so what continues is what a
    store artifact — or a migrated worker — would have restored, not a
    shared-object shortcut.
    """

    label = "resumed"

    def __init__(self, image: bytes, seed: int = 0,
                 fs: Optional[FileSystem] = None,
                 argv: Optional[Sequence[str]] = None,
                 budget: int = MEASURE_CAP,
                 hops: Sequence[int] = ()) -> None:
        super().__init__(image, seed=seed, fs=fs, argv=argv, budget=budget)
        self._hops: List[int] = sorted(set(hops))
        self.hops_done = 0

    def _hop(self) -> None:
        snapshot = capture(self.machine)
        # Serialize round-trip: the restored machine is built from the
        # canonical encoding, exactly as a resumed farm job would be.
        wire = MachineSnapshot.from_state_bytes(
            {addr: (prot, bytes(data))
             for addr, (prot, data) in snapshot.pages.items()},
            snapshot.state_bytes())
        self.tracker = DirtyPageTracker()
        self.machine = restore(wire, tools=[self.tracker])
        self.hops_done += 1

    def step(self, target: int) -> ExitStatus:
        limit = min(target, self.budget)
        while self._hops and self._hops[0] <= limit:
            hop_at = self._hops.pop(0)
            if hop_at > self.executed:
                status = self.machine.run(max_instructions=hop_at)
                if status.kind != "stopped":
                    # Workload ended before the hop point; nothing left
                    # to suspend.
                    self._hops.clear()
                    return status
            self._hop()
        return self.machine.run(max_instructions=limit)


def measure_budget(image: bytes, seed: int = 0,
                   fs: Optional[FileSystem] = None,
                   argv: Optional[Sequence[str]] = None,
                   cap: int = MEASURE_CAP) -> int:
    """Natural instruction count of the workload (capped at *cap*)."""
    machine = Machine(seed=seed, fs=_fork_fs(fs))
    load_elf(machine, image, argv=argv)
    machine.run(max_instructions=cap)
    return machine.executed_total


def pick_hops(budget: int, hops: int, hop_seed: int) -> List[int]:
    """Deterministic pseudo-random suspend points inside (0, budget)."""
    if budget <= 2 or hops <= 0:
        return []
    rng = random.Random(0x5AFE ^ hop_seed)
    return sorted(rng.sample(range(1, budget), min(hops, budget - 2)))


def verify_snapshot_lockstep(image: bytes, seed: int = 0,
                             fs: Optional[FileSystem] = None,
                             argv: Optional[Sequence[str]] = None,
                             budget: Optional[int] = None,
                             epochs: int = DEFAULT_EPOCHS,
                             hops: int = 2, hop_seed: int = 0,
                             bisect: bool = True,
                             name: str = "lockstep") -> FidelityReport:
    """Straight vs. suspend/resume differential check on one workload."""
    if budget is None:
        budget = measure_budget(image, seed=seed, fs=fs, argv=argv)
    hop_points = pick_hops(budget, hops, hop_seed)

    def make_pair():
        return (
            StraightCursor(image, seed=seed, fs=_fork_fs(fs), argv=argv,
                           budget=budget),
            ResumedCursor(image, seed=seed, fs=_fork_fs(fs), argv=argv,
                          budget=budget, hops=hop_points),
        )

    return differential_verify(
        make_pair, budget, epochs=epochs, bisect=bisect,
        labels=("straight", "resumed"), name=name)


@dataclass
class LockstepOutcome:
    """One workload's suspend/resume verdict."""

    name: str
    ok: bool
    detail: str = ""
    report: Optional[FidelityReport] = None

    def summary(self) -> str:
        if self.ok:
            return "lockstep OK: %s" % self.name
        return "lockstep FAIL: %s (%s)" % (self.name, self.detail)


def run_lockstep_case(case: FuzzCase, seed: int = 0, epochs: int = DEFAULT_EPOCHS,
                      hops: int = 2, hop_seed: int = 0) -> LockstepOutcome:
    """Suspend/resume-check one fuzzer workload end to end."""
    try:
        image, fs = build_case(case)
    except Exception as exc:
        return LockstepOutcome(name=case.name, ok=True,
                               detail="ungeneratable: %s" % exc)
    report = verify_snapshot_lockstep(
        image, seed=seed, fs=fs, epochs=epochs, hops=hops,
        hop_seed=hop_seed ^ case.seed, name=case.name)
    detail = "" if report.ok else str(report.divergence)
    return LockstepOutcome(name=case.name, ok=report.ok, detail=detail,
                           report=report)


def mt_cases(count: int = 2, start_seed: int = 0) -> List[FuzzCase]:
    """The first *count* generated cases with 2+ threads (futex MT)."""
    found: List[FuzzCase] = []
    case_seed = start_seed
    while len(found) < count:
        case = generate_case(case_seed)
        case_seed += 1
        if case.threads >= 2:
            found.append(case)
    return found


@dataclass
class LockstepSweep:
    """Aggregate of a corpus + MT-case lockstep run."""

    outcomes: List[Tuple[str, LockstepOutcome]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for _, outcome in self.outcomes)

    @property
    def failures(self) -> List[Tuple[str, LockstepOutcome]]:
        return [(name, outcome) for name, outcome in self.outcomes
                if not outcome.ok]


def lockstep_corpus(directory: str, seed: int = 0, hops: int = 2,
                    hop_seed: int = 0, mt_count: int = 2,
                    epochs: int = DEFAULT_EPOCHS) -> LockstepSweep:
    """Suspend/resume-check every corpus seed plus *mt_count* MT cases."""
    sweep = LockstepSweep()
    for path in corpus_paths(directory):
        entry: CorpusCase = load_corpus_case(path)
        outcome = run_lockstep_case(entry.case, seed=seed, epochs=epochs,
                                    hops=hops, hop_seed=hop_seed)
        sweep.outcomes.append((entry.name, outcome))
    for case in mt_cases(count=mt_count):
        outcome = run_lockstep_case(case, seed=seed, epochs=epochs,
                                    hops=hops, hop_seed=hop_seed)
        sweep.outcomes.append((case.name, outcome))
    return sweep
