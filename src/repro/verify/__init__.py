"""Differential replay-fidelity verification (``repro.verify``).

The paper's value proposition rests on an ELFie executing
*bit-identically* to the region it was checkpointed from.  This package
checks that claim mechanically: it runs the original workload, the
pinball replay, and (where eligible) the converted ELFie in
digest-checkpointed epochs, compares per-epoch architectural-state and
memory digests, and auto-bisects the first mismatching epoch down to the
first divergent instruction with a side-by-side register/memory diff.

``repro.verify.fuzz`` generates randomized PX workloads and drives the
full record -> replay -> elfie round-trip through the verifier; failing
cases are minimized and pinned as regression corpus files under
``tests/corpus/``.
"""

from repro.verify.digest import (
    DirtyPageTracker,
    EpochDigest,
    arch_digest,
    epoch_digest,
    memory_digest,
    thread_state_bytes,
)
from repro.verify.differ import side_by_side
from repro.verify.verifier import (
    ElfieEntryReport,
    FidelityReport,
    NativeCursor,
    ReplayCursor,
    differential_verify,
    verify_elfie_entry,
    verify_pinball,
)
from repro.verify.fuzz import (
    FuzzCase,
    FuzzOutcome,
    FuzzSummary,
    aslr_invariance,
    build_case,
    generate_case,
    run_case,
    fuzz,
    minimize_case,
)
from repro.verify.lockstep import (
    LockstepOutcome,
    LockstepSweep,
    ResumedCursor,
    StraightCursor,
    lockstep_corpus,
    mt_cases,
    run_lockstep_case,
    verify_snapshot_lockstep,
)
from repro.verify.corpus import (
    CorpusCase,
    corpus_paths,
    default_corpus_dir,
    failing,
    format_failure,
    load_corpus_case,
    replay_corpus,
    save_corpus_case,
)

__all__ = [
    "DirtyPageTracker",
    "EpochDigest",
    "arch_digest",
    "epoch_digest",
    "memory_digest",
    "thread_state_bytes",
    "side_by_side",
    "ElfieEntryReport",
    "FidelityReport",
    "NativeCursor",
    "ReplayCursor",
    "differential_verify",
    "verify_elfie_entry",
    "verify_pinball",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzSummary",
    "aslr_invariance",
    "build_case",
    "generate_case",
    "run_case",
    "fuzz",
    "minimize_case",
    "LockstepOutcome",
    "LockstepSweep",
    "ResumedCursor",
    "StraightCursor",
    "lockstep_corpus",
    "mt_cases",
    "run_lockstep_case",
    "verify_snapshot_lockstep",
    "CorpusCase",
    "corpus_paths",
    "default_corpus_dir",
    "failing",
    "format_failure",
    "load_corpus_case",
    "replay_corpus",
    "save_corpus_case",
]
