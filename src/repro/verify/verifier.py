"""The differential fidelity verifier.

``verify_pinball`` runs the *original workload* (fast-forwarded to the
region and then driven by the recorded schedule — the deterministic
reference execution) and the *constrained replay* of its pinball in
digest-checkpointed epochs.  At every epoch boundary both machines'
architectural-state and memory digests must agree; the first
disagreement is auto-bisected — with fresh cursor pairs per probe, so
every probe replays from the reconstructed start state — down to the
first divergent instruction, and reported with a side-by-side
register/memory diff.

``verify_elfie_entry`` checks the other conversion boundary: that ELFie
startup code hands control to application code with exactly the
captured per-thread architectural state (GPRs, RFLAGS, FS/GS bases,
XSAVE area) and, for single-threaded regions, the captured memory image
intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.machine.loader import load_elf
from repro.machine.machine import ExitStatus, Machine
from repro.machine.memory import PAGE_SHIFT
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.observe import hooks
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import DivergenceInfo, ReplaySession
from repro.verify.differ import side_by_side
from repro.verify.digest import DirtyPageTracker, EpochDigest, epoch_digest

MASK64 = (1 << 64) - 1

#: Default number of digest epochs per region.
DEFAULT_EPOCHS = 16


def _fork_fs(fs: Optional[FileSystem]) -> Optional[FileSystem]:
    """Fresh filesystem per cursor: replays mutate offsets and files."""
    if fs is None:
        return None
    fresh = FileSystem()
    fresh.copy_from(fs)
    return fresh


def _region_tids(machine: Machine, pinball: Pinball) -> List[int]:
    """Thread ids comparable across the reference and the replay.

    Threads that died before the region started exist in the original
    machine but not in a pinball reconstruction; threads created inside
    the region get tids at or above the pinball's ``next_tid`` on both
    sides (the tid counter is part of the capture).
    """
    keep = {record.tid for record in pinball.threads}
    return [tid for tid in machine.threads
            if tid in keep or tid >= pinball.next_tid]


class NativeCursor:
    """The reference execution, advanced in instruction-count steps.

    A fresh machine runs the original workload to the region start
    (warmup included), then the recorded schedule is replayed over it —
    the machine is deterministic, so driving the original code with the
    realized slices reproduces the recorded execution exactly, giving
    the verifier a ground-truth cursor with no injection involved.
    """

    label = "native"

    def __init__(self, image: bytes, pinball: Pinball, seed: int = 0,
                 fs: Optional[FileSystem] = None,
                 argv: Optional[Sequence[str]] = None,
                 aslr_seed: Optional[int] = None) -> None:
        self.pinball = pinball
        self.machine = Machine(seed=seed, fs=fs)
        load_elf(self.machine, image, argv=argv, aslr_seed=aslr_seed)
        start = pinball.region.warmup_start
        if start:
            status = self.machine.run(max_instructions=start)
            if status.kind != "stopped":
                raise ValueError(
                    "workload ended (%s) before region start at %d"
                    % (status.kind, start))
        self.base = self.machine.executed_total
        self.machine.scheduler.replay(pinball.schedule)
        budget = sum(s.quantum for s in pinball.schedule)
        self.budget = budget or pinball.region_icount
        self.tracker = DirtyPageTracker()
        self.machine.attach(self.tracker)

    @property
    def executed(self) -> int:
        """Region-relative instructions retired."""
        return self.machine.executed_total - self.base

    def step(self, target: int) -> ExitStatus:
        return self.machine.run(
            max_instructions=self.base + min(target, self.budget))

    def digest(self, index: int) -> EpochDigest:
        return epoch_digest(self.machine, index, self.executed,
                            tids=_region_tids(self.machine, self.pinball))

    def structured_divergence(self) -> Optional[DivergenceInfo]:
        return None

    def checkpoint(self):
        """Whole-machine snapshot at the current (stopped) position."""
        from repro.snapshot import capture
        return capture(self.machine, extra={
            "cursor": self.label, "base": self.base, "budget": self.budget})

    def resume_clone(self, snapshot) -> "NativeCursor":
        """Fresh cursor continuing from a checkpoint() of this cursor."""
        from repro.snapshot import restore
        cursor = object.__new__(NativeCursor)
        cursor.pinball = self.pinball
        cursor.tracker = DirtyPageTracker()
        cursor.machine = restore(snapshot, tools=[cursor.tracker])
        cursor.base = snapshot.extra["base"]
        cursor.budget = snapshot.extra["budget"]
        return cursor


class ReplayCursor:
    """The constrained replay, advanced in instruction-count steps."""

    label = "replay"

    def __init__(self, pinball: Pinball, seed: int = 0,
                 fs: Optional[FileSystem] = None) -> None:
        self.pinball = pinball
        self.session = ReplaySession(pinball, injection=True, seed=seed,
                                     fs=fs)
        self.machine = self.session.machine
        self.tracker = DirtyPageTracker()
        self.machine.attach(self.tracker)

    @property
    def executed(self) -> int:
        return self.session.executed

    def step(self, target: int) -> ExitStatus:
        return self.session.step(target)

    def digest(self, index: int) -> EpochDigest:
        return epoch_digest(self.machine, index, self.executed,
                            tids=_region_tids(self.machine, self.pinball))

    def structured_divergence(self) -> Optional[DivergenceInfo]:
        tool = self.session.tool
        if tool is not None and tool.diverged is not None:
            return tool.diverged
        if not self.session.done:
            return None
        # Budget consumed (or early exit): per-thread icounts must land
        # exactly on the recorded counts — the same post-hoc check
        # ReplaySession.result() performs.
        for record in self.pinball.threads:
            thread = self.machine.threads.get(record.tid)
            if thread is None or thread.icount == record.region_icount:
                continue
            return DivergenceInfo(
                kind="icount-mismatch", tid=record.tid,
                pc=thread.regs.rip & MASK64, icount=thread.icount,
                detail="executed %d instructions, recorded %d"
                % (thread.icount, record.region_icount))
        return None

    def checkpoint(self):
        """Whole-machine snapshot at the current (stopped) position."""
        from repro.snapshot import capture
        return capture(self.machine, extra={
            "cursor": self.label, "budget": self.session.budget,
            "injection": self.session.injection})

    def resume_clone(self, snapshot) -> "ReplayCursor":
        """Fresh cursor continuing from a checkpoint() of this cursor.

        The replay's injection tool is reconstructed empty and then
        rehydrated (per-thread syscall queues, divergence flag) by the
        pinplay snapshot plugin during restore; the session wrapper is
        rebuilt around the restored machine without re-running the
        reconstruction.
        """
        from repro.pinplay.replayer import _InjectionTool
        from repro.snapshot import restore
        cursor = object.__new__(ReplayCursor)
        cursor.pinball = self.pinball
        session = object.__new__(ReplaySession)
        session.pinball = self.pinball
        session.injection = snapshot.extra.get("injection", True)
        tool = _InjectionTool(self.pinball) if session.injection else None
        cursor.tracker = DirtyPageTracker()
        tools = ([tool] if tool is not None else []) + [cursor.tracker]
        session.machine = restore(snapshot, tools=tools)
        session.tool = tool
        session.budget = snapshot.extra["budget"]
        session.status = None
        session._finished = False
        cursor.session = session
        cursor.machine = session.machine
        return cursor


@dataclass(frozen=True)
class EpochComparison:
    """One epoch boundary's digest pair."""

    index: int
    icount: int
    a: EpochDigest
    b: EpochDigest
    match: bool


@dataclass
class Divergence:
    """A localized fidelity divergence."""

    epoch: int                   # first mismatching epoch
    icount: int                  # first divergent instruction (1-based)
    tid: int                     # thread that retired it
    pc: int                      # its address
    diff: str                    # side-by-side state diff at icount
    dirty_pages: List[int] = field(default_factory=list)
    replay: Optional[DivergenceInfo] = None

    def __str__(self) -> str:
        head = ("divergence at epoch %d, instruction %d: tid %d, pc 0x%x"
                % (self.epoch, self.icount, self.tid, self.pc))
        if self.replay is not None:
            head += " [%s]" % self.replay
        return head


@dataclass
class FidelityReport:
    """Outcome of one differential verification."""

    name: str
    labels: Tuple[str, str]
    ok: bool
    region_icount: int
    epoch_length: int
    epochs: List[EpochComparison] = field(default_factory=list)
    first_bad_epoch: Optional[int] = None
    divergence: Optional[Divergence] = None

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "labels": list(self.labels),
            "ok": self.ok,
            "region_icount": self.region_icount,
            "epoch_length": self.epoch_length,
            "epochs": [
                {"index": c.index, "icount": c.icount, "match": c.match,
                 "a": {"arch": c.a.arch, "mem": c.a.mem},
                 "b": {"arch": c.b.arch, "mem": c.b.mem}}
                for c in self.epochs
            ],
            "first_bad_epoch": self.first_bad_epoch,
            "divergence": None if self.divergence is None else {
                "epoch": self.divergence.epoch,
                "icount": self.divergence.icount,
                "tid": self.divergence.tid,
                "pc": self.divergence.pc,
                "diff": self.divergence.diff,
                "dirty_pages": self.divergence.dirty_pages,
                "replay": (str(self.divergence.replay)
                           if self.divergence.replay else None),
            },
        }

    def summary(self) -> str:
        if self.ok:
            return ("fidelity OK: %s, %d instructions, %d epochs clean"
                    % (self.name, self.region_icount, len(self.epochs)))
        return "fidelity FAIL: %s, %s" % (self.name, self.divergence)


MakePair = Callable[[], Tuple[object, object]]


def _probe(make_pair: MakePair, icount: int):
    """Fresh cursor pair advanced to *icount*; returns (equal, a, b)."""
    a, b = make_pair()
    if icount:
        a.step(icount)
        b.step(icount)
    equal = (a.executed == b.executed
             and a.digest(0).matches(b.digest(0)))
    return equal, a, b


def _bisect_icount(make_pair: MakePair, lo: int, hi: int) -> int:
    """Smallest icount in (lo, hi] whose states mismatch.

    Invariant: probe(lo) is equal, probe(hi) mismatches.  Each probe
    uses a fresh cursor pair, so probes are independent of each other
    and of the epoch sweep that established the bracket.
    """
    while hi - lo > 1:
        mid = (lo + hi) // 2
        equal, _, _ = _probe(make_pair, mid)
        if equal:
            lo = mid
        else:
            hi = mid
    return hi


def _advanced_thread(machine: Machine,
                     before: Dict[int, Tuple[int, int]]):
    """(tid, pc-before-step) of the thread that retired the last step."""
    for tid in sorted(machine.threads):
        thread = machine.threads[tid]
        prev = before.get(tid)
        if prev is None:
            return tid, thread.regs.rip & MASK64
        if thread.icount != prev[0]:
            return tid, prev[1]
    return None


def _localize(make_pair: MakePair, epoch: int, icount: int,
              labels: Tuple[str, str]) -> Divergence:
    """Pin the divergence at *icount* down to (tid, pc) plus a diff."""
    _, a, b = _probe(make_pair, icount - 1)
    before_a = {tid: (t.icount, t.regs.rip & MASK64)
                for tid, t in a.machine.threads.items()}
    before_b = {tid: (t.icount, t.regs.rip & MASK64)
                for tid, t in b.machine.threads.items()}
    a.tracker.take()
    b.tracker.take()
    a.step(icount)
    b.step(icount)
    culprit = (_advanced_thread(b.machine, before_b)
               or _advanced_thread(a.machine, before_a))
    if culprit is None:
        # Neither machine advanced: the divergence is a stall (e.g. the
        # replay stopped on a syscall check); report the replay's state.
        tid = min(b.machine.threads) if b.machine.threads else -1
        pc = (b.machine.threads[tid].regs.rip & MASK64) if tid >= 0 else 0
        culprit = (tid, pc)
    dirty = sorted(a.tracker.take() | b.tracker.take())
    diff = side_by_side(a.machine, b.machine, labels=labels)
    return Divergence(
        epoch=epoch, icount=icount, tid=culprit[0], pc=culprit[1],
        diff=diff, dirty_pages=dirty,
        replay=(b.structured_divergence() or a.structured_divergence()),
    )


def differential_verify(make_pair: MakePair, budget: int,
                        epochs: int = DEFAULT_EPOCHS,
                        bisect: bool = True,
                        labels: Tuple[str, str] = ("native", "replay"),
                        name: str = "",
                        time_travel: bool = True) -> FidelityReport:
    """Run two cursors in digest-checkpointed lockstep.

    *make_pair* builds a fresh ``(a, b)`` cursor pair in their start
    states; the pair is advanced epoch by epoch, digests compared at
    every boundary (including icount 0, which checks the reconstruction
    itself).  On the first mismatch — digest or progress — the
    divergence is bisected to the exact instruction when *bisect* is
    set.

    With *time_travel* (and cursors that support ``checkpoint()`` /
    ``resume_clone()``), the sweep keeps a whole-machine snapshot pair
    from the last good epoch and every bisection probe resumes from it
    instead of rebuilding cursors from the region start — probe cost
    becomes O(epoch) instead of O(region).
    """
    obs = hooks.OBS
    epoch_length = max(1, -(-budget // max(1, epochs)))
    a, b = make_pair()
    can_travel = (time_travel and bisect
                  and hasattr(a, "checkpoint") and hasattr(b, "checkpoint"))
    last_snapshots = None
    report = FidelityReport(name=name, labels=labels, ok=True,
                            region_icount=budget,
                            epoch_length=epoch_length)
    last_good = 0
    bad_at: Optional[int] = None
    index = 0
    while True:
        target = min(budget, index * epoch_length)
        if target:
            a.step(target)
            b.step(target)
        da = a.digest(index)
        db = b.digest(index)
        match = da.matches(db) and a.executed == b.executed
        report.epochs.append(EpochComparison(
            index=index, icount=target, a=da, b=db, match=match))
        if not match:
            report.ok = False
            report.first_bad_epoch = index
            if a.executed != b.executed:
                bad_at = min(a.executed, b.executed) + 1
            else:
                bad_at = target
            break
        last_good = a.executed
        if target >= budget or a.executed < target:
            # Region complete — or both cursors stalled identically
            # (early region exit), which digest equality already vouches
            # for.
            break
        if can_travel:
            try:
                last_snapshots = (a.checkpoint(), b.checkpoint())
            except ValueError:
                last_snapshots = None  # not at a resumable boundary
        index += 1
    if report.ok:
        # Digests agree everywhere; still surface a structured replay
        # complaint (e.g. a trailing per-thread icount mismatch).
        info = b.structured_divergence() or a.structured_divergence()
        if info is not None:
            report.ok = False
            report.first_bad_epoch = report.epochs[-1].index
            report.divergence = Divergence(
                epoch=report.epochs[-1].index, icount=b.executed,
                tid=info.tid, pc=info.pc, diff="", replay=info)
    elif bisect:
        probe_pair = make_pair
        if last_snapshots is not None:
            snap_a, snap_b = last_snapshots

            def probe_pair():
                return (a.resume_clone(snap_a), b.resume_clone(snap_b))

        first_bad = _bisect_icount(probe_pair, last_good, bad_at)
        report.divergence = _localize(probe_pair, report.first_bad_epoch,
                                      first_bad, labels)
    else:
        info = b.structured_divergence() or a.structured_divergence()
        report.divergence = Divergence(
            epoch=report.first_bad_epoch, icount=bad_at,
            tid=info.tid if info else -1, pc=info.pc if info else 0,
            diff="", replay=info)
    if obs.enabled:
        obs.count("verify.runs")
        if not report.ok:
            obs.count("verify.divergences")
            div = report.divergence
            bad = report.epochs[-1]
            obs.instant(
                "verify.divergence", "verify", name=name,
                epoch=report.first_bad_epoch,
                icount=div.icount if div else -1,
                tid=div.tid if div else -1,
                pc=div.pc if div else 0,
                kind=(div.replay.kind if div and div.replay else "digest"),
                digest_a=bad.a.key, digest_b=bad.b.key)
    return report


def verify_pinball(image: bytes, pinball: Pinball, seed: int = 0,
                   fs: Optional[FileSystem] = None,
                   argv: Optional[Sequence[str]] = None,
                   epochs: int = DEFAULT_EPOCHS,
                   bisect: bool = True,
                   aslr_seed: Optional[int] = None) -> FidelityReport:
    """Differentially verify a pinball against its source workload.

    *aslr_seed* must match the seed the pinball was logged with: the
    native reference re-loads the image, and a different base would
    diverge from the captured (absolute-address) pages immediately.
    """

    def make_pair():
        return (
            NativeCursor(image, pinball, seed=seed, fs=_fork_fs(fs),
                         argv=argv, aslr_seed=aslr_seed),
            ReplayCursor(pinball, seed=seed, fs=_fork_fs(fs)),
        )

    budget = sum(s.quantum for s in pinball.schedule)
    if budget == 0:
        budget = pinball.region_icount
    with hooks.OBS.span("verify.pinball", "verify", pinball=pinball.name):
        return differential_verify(
            make_pair, budget, epochs=epochs, bisect=bisect,
            labels=("native", "replay"), name=pinball.name)


# -- ELFie entry-state verification ---------------------------------------


class _EntryCapture(Tool):
    """Snapshots each thread's registers as it enters application code.

    State is captured inside the pre-execution instruction hook:
    ``request_stop`` only takes effect at the next scheduling boundary,
    so by the time ``machine.run`` returns the application has already
    executed a handful of instructions (which may e.g. ``munmap`` a
    captured page).  The memory comparison therefore happens here too.
    """

    wants_instructions = True

    def __init__(self, entry_rips: Dict[int, int],
                 pages: Optional[Dict[int, Tuple[int, bytes]]] = None) -> None:
        self.entry_rips = entry_rips
        self.captured: Dict[int, object] = {}
        #: Captured pages to compare once every thread has entered.
        self.pages = pages
        self.bad_pages: Optional[List[int]] = None

    def _check_pages(self, machine) -> None:
        bad: List[int] = []
        for addr in sorted(self.pages or {}):
            page = addr >> PAGE_SHIFT
            if not machine.mem.is_mapped(addr):
                bad.append(page)
            elif machine.mem.page_bytes(page) != self.pages[addr][1]:
                bad.append(page)
        self.bad_pages = bad

    def on_instruction(self, machine, thread, pc, insn) -> None:
        if thread.tid in self.captured:
            return
        if pc == self.entry_rips.get(thread.tid):
            self.captured[thread.tid] = thread.regs.copy()
            if len(self.captured) == len(self.entry_rips):
                if self.pages is not None:
                    self._check_pages(machine)
                machine.request_stop("all threads entered application code")


@dataclass
class ElfieEntryReport:
    """Did ELFie startup reproduce the captured entry state?"""

    name: str
    ok: bool
    entered: Dict[int, bool] = field(default_factory=dict)
    #: tid -> list of "reg expected/got" mismatch strings.
    register_mismatches: Dict[int, List[str]] = field(default_factory=dict)
    #: Captured pages whose contents differ at entry (ST regions only).
    memory_checked: bool = False
    bad_pages: List[int] = field(default_factory=list)
    detail: str = ""

    def summary(self) -> str:
        if self.ok:
            return "elfie entry OK: %s" % self.name
        return "elfie entry FAIL: %s (%s)" % (self.name, self.detail)


def _compare_entry_regs(expected, got) -> List[str]:
    from repro.isa.registers import GPR_NAMES
    rows = []
    for idx, reg_name in enumerate(GPR_NAMES):
        if (expected.gpr[idx] & MASK64) != (got.gpr[idx] & MASK64):
            rows.append("%s expected %016x got %016x"
                        % (reg_name, expected.gpr[idx] & MASK64,
                           got.gpr[idx] & MASK64))
    if expected.flags.to_word() != got.flags.to_word():
        rows.append("rflags expected %016x got %016x"
                    % (expected.flags.to_word(), got.flags.to_word()))
    if (expected.fs_base & MASK64) != (got.fs_base & MASK64):
        rows.append("fs_base expected %016x got %016x"
                    % (expected.fs_base & MASK64, got.fs_base & MASK64))
    if (expected.gs_base & MASK64) != (got.gs_base & MASK64):
        rows.append("gs_base expected %016x got %016x"
                    % (expected.gs_base & MASK64, got.gs_base & MASK64))
    if expected.xsave_bytes() != got.xsave_bytes():
        rows.append("xsave area differs (xmm/mxcsr)")
    return rows


def verify_elfie_entry(elfie_image: bytes, pinball: Pinball,
                       seed: int = 0, fs: Optional[FileSystem] = None,
                       workdir: str = "/",
                       max_startup: int = 1_000_000) -> ElfieEntryReport:
    """Run an ELFie's startup and check the application entry state.

    Every captured thread must reach its captured RIP with its captured
    GPRs, RFLAGS, FS/GS bases, and XSAVE area.  For single-threaded
    regions the captured page contents are compared too (in
    multi-threaded ELFies the first-entering thread legitimately
    mutates memory while later threads are still in startup).
    """
    from repro.core.elfie import prepare_elfie_machine

    report = ElfieEntryReport(name=pinball.name, ok=True)
    machine, _loaded = prepare_elfie_machine(elfie_image, seed=seed, fs=fs,
                                             workdir=workdir)
    # ELFie thread tids are assigned in clone order, which follows the
    # pinball's tid-sorted thread order: elfie tid i <-> sorted record i.
    records = sorted(pinball.threads, key=lambda r: r.tid)
    entry_rips = {position: record.regs.rip & MASK64
                  for position, record in enumerate(records)}
    single_threaded = len(records) == 1
    capture = _EntryCapture(
        entry_rips, pages=pinball.pages if single_threaded else None)
    machine.attach(capture)
    machine.run(max_instructions=max_startup)
    machine.detach(capture)

    details: List[str] = []
    for position, record in enumerate(records):
        entered = position in capture.captured
        report.entered[record.tid] = entered
        if not entered:
            report.ok = False
            details.append("tid %d never reached entry rip 0x%x"
                           % (record.tid, record.regs.rip & MASK64))
            continue
        rows = _compare_entry_regs(record.regs, capture.captured[position])
        if rows:
            report.ok = False
            report.register_mismatches[record.tid] = rows
            details.append("tid %d: %s" % (record.tid, "; ".join(rows)))
    if capture.bad_pages is not None:
        report.memory_checked = True
        report.bad_pages = capture.bad_pages
        if report.bad_pages:
            report.ok = False
            details.append("%d captured pages differ at entry (first 0x%x)"
                           % (len(report.bad_pages),
                              report.bad_pages[0] << PAGE_SHIFT))
    report.detail = "; ".join(details)
    obs = hooks.OBS
    if obs.enabled:
        obs.count("verify.elfie_entries")
        if not report.ok:
            obs.count("verify.elfie_entry_failures")
            obs.instant("verify.elfie_entry_failure", "verify",
                        name=pinball.name, detail=report.detail)
    return report
