"""Side-by-side architectural-state and memory diffs.

When the verifier has localized a divergence, these helpers render the
two machines' states next to each other so the mismatch is readable:
which registers differ per thread, and which bytes differ in which
pages (narrowed to the pages the epoch actually touched when a
:class:`~repro.verify.digest.DirtyPageTracker` set is supplied).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.isa.registers import GPR_NAMES
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

MASK64 = (1 << 64) - 1
_MAX_BYTE_RUNS = 8


def _reg_rows(a_thread, b_thread) -> List[str]:
    rows = []
    a_regs, b_regs = a_thread.regs, b_thread.regs
    for idx, name in enumerate(GPR_NAMES):
        left, right = a_regs.gpr[idx] & MASK64, b_regs.gpr[idx] & MASK64
        if left != right:
            rows.append("    %-8s %016x | %016x" % (name, left, right))
    for name in ("rip", "fs_base", "gs_base", "mxcsr"):
        left = getattr(a_regs, name) & MASK64
        right = getattr(b_regs, name) & MASK64
        if left != right:
            rows.append("    %-8s %016x | %016x" % (name, left, right))
    left, right = a_regs.flags.to_word(), b_regs.flags.to_word()
    if left != right:
        rows.append("    %-8s %016x | %016x" % ("rflags", left, right))
    for idx in range(len(a_regs.xmm)):
        if a_regs.xmm[idx] != b_regs.xmm[idx]:
            rows.append("    xmm%-5d %r | %r"
                        % (idx, a_regs.xmm[idx], b_regs.xmm[idx]))
    if a_thread.alive != b_thread.alive:
        rows.append("    %-8s %16s | %16s"
                    % ("alive", a_thread.alive, b_thread.alive))
    if a_thread.blocked != b_thread.blocked:
        rows.append("    %-8s %16s | %16s"
                    % ("blocked", a_thread.blocked, b_thread.blocked))
    return rows


def _page_rows(a: "Machine", b: "Machine", page: int) -> List[str]:
    base = page << PAGE_SHIFT
    a_mapped = a.mem.is_mapped(base)
    b_mapped = b.mem.is_mapped(base)
    if a_mapped != b_mapped:
        return ["  page 0x%x: mapped=%s | mapped=%s"
                % (base, a_mapped, b_mapped)]
    if not a_mapped:
        return []
    a_bytes = a.mem.page_bytes(page)
    b_bytes = b.mem.page_bytes(page)
    if a_bytes == b_bytes:
        return []
    rows = ["  page 0x%x:" % base]
    runs = 0
    offset = 0
    while offset < PAGE_SIZE and runs < _MAX_BYTE_RUNS:
        if a_bytes[offset] == b_bytes[offset]:
            offset += 1
            continue
        start = offset
        while (offset < PAGE_SIZE and offset - start < 16
               and a_bytes[offset] != b_bytes[offset]):
            offset += 1
        rows.append("    +0x%03x  %s | %s"
                    % (start, a_bytes[start:offset].hex(),
                       b_bytes[start:offset].hex()))
        runs += 1
    if runs >= _MAX_BYTE_RUNS:
        rows.append("    ... (more byte runs differ)")
    return rows


def side_by_side(a: "Machine", b: "Machine",
                 labels: tuple = ("native", "replay"),
                 pages: Optional[Iterable[int]] = None,
                 tids: Optional[Iterable[int]] = None) -> str:
    """Render the differing state between two machines.

    *pages* narrows the memory section to the given page indices (the
    epoch's dirty set); by default every mapped page is compared.
    *tids* narrows the register section to comparable threads.
    """
    lines = ["state diff (%s | %s)" % labels]
    keep = set(tids) if tids is not None else None
    shared = sorted(set(a.threads) | set(b.threads))
    for tid in shared:
        if keep is not None and tid not in keep:
            continue
        if tid not in a.threads or tid not in b.threads:
            lines.append("  tid %d: present=%s | present=%s"
                         % (tid, tid in a.threads, tid in b.threads))
            continue
        rows = _reg_rows(a.threads[tid], b.threads[tid])
        if rows:
            lines.append("  tid %d:" % tid)
            lines.extend(rows)
    if pages is None:
        candidates = sorted(set(a.mem.mapped_pages())
                            | set(b.mem.mapped_pages()))
    else:
        candidates = sorted(set(pages))
    for page in candidates:
        lines.extend(_page_rows(a, b, page))
    if len(lines) == 1:
        lines.append("  (no differences)")
    return "\n".join(lines)
