"""The fidelity regression corpus (``tests/corpus/*.json``).

Every divergence class the fuzzer (or a human) has found gets pinned as
a corpus file: the minimized :class:`~repro.verify.fuzz.FuzzCase` that
once exposed it, plus a note naming the bug it regression-tests.
``replay_corpus`` re-runs every file through the full
record -> replay -> ELFie round-trip deterministically; a corpus case
failing again means the bug is back.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.verify.fuzz import FuzzCase, FuzzOutcome, run_case

CORPUS_VERSION = 1


@dataclass
class CorpusCase:
    """One persisted regression seed."""

    name: str
    case: FuzzCase
    #: Which divergence class this seed pins (free-form, for humans).
    bug: str = ""
    check_elfie: bool = True

    def to_json(self) -> dict:
        return {
            "version": CORPUS_VERSION,
            "name": self.name,
            "bug": self.bug,
            "check_elfie": self.check_elfie,
            "case": self.case.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "CorpusCase":
        return cls(
            name=data["name"],
            case=FuzzCase.from_json(data["case"]),
            bug=data.get("bug", ""),
            check_elfie=data.get("check_elfie", True),
        )


def corpus_paths(directory: str) -> List[str]:
    """Sorted paths of every corpus file under *directory*."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, entry)
        for entry in os.listdir(directory)
        if entry.endswith(".json")
    )


def load_corpus_case(path: str) -> CorpusCase:
    with open(path) as handle:
        return CorpusCase.from_json(json.load(handle))


def save_corpus_case(directory: str, case: FuzzCase, name: str,
                     bug: str = "", check_elfie: bool = True) -> str:
    """Persist a (minimized) failing case; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    entry = CorpusCase(name=name, case=case, bug=bug,
                       check_elfie=check_elfie)
    path = os.path.join(directory, "%s.json" % name)
    with open(path, "w") as handle:
        json.dump(entry.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay_corpus(directory: str,
                  seed: int = 0) -> List[Tuple[CorpusCase, FuzzOutcome]]:
    """Re-verify every corpus case; returns (case, outcome) pairs."""
    results = []
    for path in corpus_paths(directory):
        entry = load_corpus_case(path)
        outcome = run_case(entry.case, seed=seed,
                           check_elfie=entry.check_elfie)
        results.append((entry, outcome))
    return results


def failing(results: List[Tuple[CorpusCase, FuzzOutcome]]
            ) -> List[Tuple[CorpusCase, FuzzOutcome]]:
    return [(entry, outcome) for entry, outcome in results if not outcome.ok]


def format_failure(entry: CorpusCase, outcome: FuzzOutcome) -> str:
    """Human-readable failure report, minimized seed included."""
    lines = [
        "corpus case %r FAILED at stage %r: %s"
        % (entry.name, outcome.stage, outcome.detail),
        "  pinned bug: %s" % (entry.bug or "(unlabelled)"),
        "  minimized seed: %s" % json.dumps(outcome.case.to_json(),
                                            sort_keys=True),
    ]
    if outcome.report is not None and outcome.report.divergence is not None:
        lines.append("  " + str(outcome.report.divergence))
    return "\n".join(lines)


def default_corpus_dir(root: Optional[str] = None) -> str:
    """``tests/corpus`` relative to the repository *root* (or cwd)."""
    base = root or os.getcwd()
    return os.path.join(base, "tests", "corpus")
