"""Fidelity fuzzing: randomized PX workloads through the round-trip.

``generate_case`` derives a randomized workload — threads, self-
modifying stores, mmap churn, file reads, syscalls, mid-block PMU traps
— from a seed, and ``run_case`` drives it through the full
record -> constrained replay -> ELFie pipeline under the differential
verifier.  ``fuzz`` loops generation under a wall-clock budget;
``minimize_case`` shrinks a failing case (fewer features, threads,
iterations, a smaller region) while it still fails, producing the
minimal seed that is persisted into the regression corpus.

Everything is deterministic in the case description: the same
:class:`FuzzCase` always builds the same program and the same region,
so corpus replays are exact.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.pinball2elf import Pinball2Elf, Pinball2ElfOptions
from repro.machine.cpu import set_default_dispatch
from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.machine.vfs import FileSystem
from repro.observe import hooks
from repro.pinplay.logger import LogOptions, log_region
from repro.pinplay.regions import RegionSpec
from repro.pinplay.sysstate import extract_sysstate
from repro.verify.verifier import (
    FidelityReport,
    verify_elfie_entry,
    verify_pinball,
)
from repro.workloads.compile import build_executable

#: Every generatable workload ingredient.
ALL_FEATURES: Tuple[str, ...] = (
    "arith",      # register arithmetic (always useful filler)
    "syscalls",   # getpid/time/write churn
    "files",      # open/read/lseek against a pre-created input file
    "mmap",       # anonymous mmap + store/load + munmap churn
    "smc",        # copy code into an RWX mapping and call it
    "smcwrite",   # heat the copied code hot, then overwrite it in place
    "futex",      # worker threads + futex wait/wake handshakes
    "pmu",        # mid-block PMU trap ends the program via a handler
    "loops",      # counted work loops (harvestable back-edge markers)
    "signals",    # rt_sigaction + kill(self) + handler/sigreturn churn
    "pipes",      # pipe() write/read round-trips through a channel
    "shm",        # SysV shmget/shmat/store/shmdt (sometimes leaked)
    "aslr",       # load the image at a randomized base (not an action:
                  # the whole pipeline runs with an ASLR slide)
)

_INPUT_PATH = "/fuzz_in.dat"
_INPUT_BYTES = bytes((7 * i + 3) & 0xFF for i in range(64))


@dataclass(frozen=True)
class FuzzCase:
    """A deterministic description of one fuzz workload + region."""

    seed: int
    threads: int = 1
    iterations: int = 4
    features: Tuple[str, ...] = ("arith",)
    #: Region start as a percentage of the program's total icount.
    region_pos: int = 10
    #: Region length as a percentage of the program's total icount.
    region_len_pct: int = 50
    #: Marker-delimited region: instead of cutting the window on the
    #: percentage icounts directly, snap both boundaries to work-marker
    #: crossings (LoopPoint slice boundaries harvested from the image).
    #: Exercises marker-delimited ELFie regions through the verifier.
    region_marker: bool = False

    @property
    def name(self) -> str:
        return "fuzz-%d" % self.seed

    @property
    def aslr_seed(self) -> Optional[int]:
        """Slide seed for the whole pipeline, or None for base loads.

        Derived from the case seed so corpus replays use the same base
        without widening the persisted JSON schema.
        """
        return self.seed if "aslr" in self.features else None

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "threads": self.threads,
            "iterations": self.iterations,
            "features": list(self.features),
            "region_pos": self.region_pos,
            "region_len_pct": self.region_len_pct,
            "region_marker": self.region_marker,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FuzzCase":
        return cls(
            seed=data["seed"],
            threads=data.get("threads", 1),
            iterations=data.get("iterations", 4),
            features=tuple(data.get("features", ("arith",))),
            region_pos=data.get("region_pos", 10),
            region_len_pct=data.get("region_len_pct", 50),
            region_marker=data.get("region_marker", False),
        )


@dataclass
class FuzzOutcome:
    """What happened when a case went through the round-trip."""

    case: FuzzCase
    ok: bool
    #: Pipeline stage that failed: "build" | "record" | "dispatch" |
    #: "replay" | "elfie" — or "" on success.  "build"/"record" failures
    #: indicate an ungeneratable case (treated as invalid, not a
    #: divergence); "dispatch" is an interpreter-tier divergence (the
    #: selected dispatch tier disagreed with the slow loop).
    stage: str = ""
    detail: str = ""
    report: Optional[FidelityReport] = None

    @property
    def is_divergence(self) -> bool:
        return not self.ok and self.stage in ("dispatch", "replay", "elfie")


def generate_case(seed: int) -> FuzzCase:
    """Derive a randomized case from *seed* (deterministically)."""
    rng = random.Random(seed)
    pool = [f for f in ALL_FEATURES if f != "arith"]
    count = rng.randint(1, min(4, len(pool)))
    features = ("arith",) + tuple(sorted(rng.sample(pool, count)))
    threads = rng.randint(2, 3) if "futex" in features else 1
    iterations = rng.randint(1, 6)
    region_pos = rng.randint(0, 60)
    region_len_pct = rng.randint(10, 90)
    # Marker-delimited regions need harvestable work loops to land on.
    region_marker = "loops" in features and rng.random() < 0.5
    return FuzzCase(
        seed=seed,
        threads=threads,
        iterations=iterations,
        features=features,
        region_pos=region_pos,
        region_len_pct=region_len_pct,
        region_marker=region_marker,
    )


# -- program generation ---------------------------------------------------


def _main_action(feature: str, rng: random.Random, index: int,
                 lines: List[str]) -> None:
    if feature == "arith":
        for _ in range(rng.randint(2, 5)):
            reg = rng.choice(("rbx", "rdx", "r9"))
            lines.append("    %s %s, %d"
                         % (rng.choice(("add", "sub", "xor")), reg,
                            rng.randint(1, 255)))
    elif feature == "syscalls":
        which = rng.choice(("getpid", "time", "write"))
        if which == "getpid":
            lines += ["    mov rax, 39", "    syscall",
                      "    add rbx, rax"]
        elif which == "time":
            lines += ["    mov rax, 201", "    mov rdi, 0", "    syscall",
                      "    add rbx, rax"]
        else:
            lines += ["    mov rax, 1", "    mov rdi, 1",
                      "    mov rsi, msg", "    mov rdx, 4", "    syscall"]
    elif feature == "files":
        if rng.random() < 0.4:
            offset = rng.randrange(0, len(_INPUT_BYTES), 8)
            lines += ["    mov rax, 8          ; lseek(r14, %d, SET)" % offset,
                      "    mov rdi, r14", "    mov rsi, %d" % offset,
                      "    mov rdx, 0", "    syscall"]
        lines += ["    mov rax, 0          ; read(r14, buf, 8)",
                  "    mov rdi, r14", "    mov rsi, buf",
                  "    mov rdx, 8", "    syscall",
                  "    ld rcx, [buf]", "    add rbx, rcx"]
    elif feature == "mmap":
        value = rng.randint(1, 0xFFFF)
        lines += [
            "    mov rax, 9          ; mmap(0, 4096, RW, PRIV|ANON)",
            "    mov rdi, 0", "    mov rsi, 4096", "    mov rdx, 3",
            "    mov r10, 0x22", "    mov r8, -1", "    mov r9, 0",
            "    syscall", "    mov r13, rax",
            "    mov rcx, %d" % value,
            "    st [r13], rcx", "    ld rdx, [r13]", "    add rbx, rdx",
        ]
        if rng.random() < 0.5:
            lines += ["    mov rax, 11         ; munmap",
                      "    mov rdi, r13", "    mov rsi, 4096",
                      "    syscall"]
        else:
            lines += ["    mov rax, 10         ; mprotect(r13, 4096, R)",
                      "    mov rdi, r13", "    mov rsi, 4096",
                      "    mov rdx, 1", "    syscall"]
    elif feature == "signals":
        masked = rng.random() < 0.4
        if masked:
            # Raise while blocked, then unmask: delivery happens at the
            # slice the unblocking sigprocmask ends, not the kill.
            lines += ["    mov rax, 14         ; sigprocmask(BLOCK, usr1)",
                      "    mov rdi, 0", "    mov rsi, blockmask",
                      "    mov rdx, 0", "    syscall"]
        lines += [
            "    mov rax, 39         ; getpid",
            "    syscall",
            "    mov rdi, rax",
            "    mov rsi, 10         ; kill(pid, SIGUSR1)",
            "    mov rax, 62",
            "    syscall",
        ]
        if masked:
            lines += ["    mov rax, 14         ; sigprocmask(UNBLOCK, usr1)",
                      "    mov rdi, 1", "    mov rsi, blockmask",
                      "    mov rdx, 0", "    syscall"]
        lines += ["    ld rdx, [signote]", "    add rbx, rdx"]
    elif feature == "pipes":
        chunk = rng.randint(1, 4)
        lines += [
            "    mov rcx, pipefds",
            "    ld4 rdi, [rcx+4]    ; write end",
            "    mov rax, 1",
            "    mov rsi, msg",
            "    mov rdx, %d" % chunk,
            "    syscall",
            "    mov rcx, pipefds",
            "    ld4 rdi, [rcx]      ; read end (data queued: no block)",
            "    mov rax, 0",
            "    mov rsi, pipebuf",
            "    mov rdx, %d" % chunk,
            "    syscall",
            "    ld4 rcx, [pipebuf]",
            "    add rbx, rcx",
        ]
    elif feature == "shm":
        value = rng.randint(1, 0xFFFF)
        lines += [
            "    mov rax, 29         ; shmget(IPC_PRIVATE, 4096, CREAT)",
            "    mov rdi, 0", "    mov rsi, 4096", "    mov rdx, 512",
            "    syscall", "    mov r13, rax",
            "    mov rax, 30         ; shmat(shmid, 0, 0)",
            "    mov rdi, r13", "    mov rsi, 0", "    mov rdx, 0",
            "    syscall", "    mov r12, rax",
            "    mov rcx, %d" % value,
            "    st [r12], rcx", "    ld rdx, [r12]", "    add rbx, rdx",
            "    mov rax, 67         ; shmdt(addr)",
            "    mov rdi, r12", "    syscall",
        ]
        if rng.random() < 0.7:
            lines += ["    mov rax, 31         ; shmctl(shmid, IPC_RMID)",
                      "    mov rdi, r13", "    mov rsi, 0",
                      "    mov rdx, 0", "    syscall"]
        # else: leak the detached segment into the region's kernel state
    elif feature == "loops":
        trips = rng.randint(3, 9)
        step = rng.randint(1, 63)
        lines += [
            "    mov rcx, %d" % trips,
            "loop_%d:" % index,
            "    add rbx, %d" % step,
            "    sub rcx, 1",
            "    cmp rcx, 0",
            "    jnz loop_%d" % index,
        ]
    elif feature == "smc":
        lines += [
            "    mov rax, 9          ; mmap(0, 4096, RWX, PRIV|ANON)",
            "    mov rdi, 0", "    mov rsi, 4096", "    mov rdx, 7",
            "    mov r10, 0x22", "    mov r8, -1", "    mov r9, 0",
            "    syscall", "    mov r12, rax",
            "    mov rsi, func", "    mov rdi, r12",
            "    mov rcx, func_end", "    sub rcx, rsi",
            "smc_copy_%d:" % index,
            "    ld1 rdx, [rsi]", "    st1 [rdi], rdx",
            "    add rsi, 1", "    add rdi, 1", "    sub rcx, 1",
            "    cmp rcx, 0", "    jnz smc_copy_%d" % index,
            "    call r12", "    add rbx, rdx",
        ]
    elif feature == "smcwrite":
        # Copy `func` into an RWX mapping, call it enough times to heat
        # the copy into the superblock chain and the compiled tier, then
        # copy over it again *in place*: every st1 of the second pass
        # writes into a now-executable page, so the interpreter must
        # sever the chained edges and drop the compiled body mid-run.
        lines += [
            "    mov rax, 9          ; mmap(0, 4096, RWX, PRIV|ANON)",
            "    mov rdi, 0", "    mov rsi, 4096", "    mov rdx, 7",
            "    mov r10, 0x22", "    mov r8, -1", "    mov r9, 0",
            "    syscall", "    mov r12, rax",
            "    mov rsi, func", "    mov rdi, r12",
            "    mov rcx, func_end", "    sub rcx, rsi",
            "smcw_copy_%d:" % index,
            "    ld1 rdx, [rsi]", "    st1 [rdi], rdx",
            "    add rsi, 1", "    add rdi, 1", "    sub rcx, 1",
            "    cmp rcx, 0", "    jnz smcw_copy_%d" % index,
            "    mov r15, %d" % rng.randint(6, 9),
            "smcw_call_%d:" % index,
            "    call r12", "    add rbx, rdx",
            "    sub r15, 1", "    cmp r15, 0",
            "    jnz smcw_call_%d" % index,
            "    mov rsi, func", "    mov rdi, r12",
            "    mov rcx, func_end", "    sub rcx, rsi",
            "smcw_rw_%d:" % index,
            "    ld1 rdx, [rsi]", "    st1 [rdi], rdx",
            "    add rsi, 1", "    add rdi, 1", "    sub rcx, 1",
            "    cmp rcx, 0", "    jnz smcw_rw_%d" % index,
            "    call r12", "    add rbx, rdx",
        ]


def _program_source(case: FuzzCase) -> Tuple[str, str]:
    """Build (text source, data source) for *case*."""
    rng = random.Random(case.seed * 7919 + 17)
    lines: List[str] = ["_start:", "    mov rbx, %d" % (case.seed & 0xFF)]
    data: List[str] = ["msg:", '    .asciz "fzz\\n"']

    workers = case.threads - 1 if "futex" in case.features else 0
    if "files" in case.features:
        lines += [
            "    mov rax, 2          ; open(input, O_RDONLY)",
            "    mov rdi, inpath", "    mov rsi, 0", "    syscall",
            "    mov r14, rax",
            # consume a prefix now so the region starts mid-file: the
            # descriptor's *real* offset at region start is nonzero.
            "    mov rax, 0", "    mov rdi, r14", "    mov rsi, buf",
            "    mov rdx, 8", "    syscall",
        ]
        data += ["inpath:", '    .asciz "%s"' % _INPUT_PATH,
                 "buf:", "    .zero 16"]
    if "signals" in case.features:
        lines += [
            "    mov rax, 13         ; rt_sigaction(SIGUSR1, sigact, 0)",
            "    mov rdi, 10", "    mov rsi, sigact", "    mov rdx, 0",
            "    syscall",
        ]
        # `.quad sighandler` is an absolute address slot: the builder
        # records it in .pxreloc, so ASLR cases keep a valid handler.
        data += ["sigact:", "    .quad sighandler", "    .quad 0",
                 "signote:", "    .quad 0",
                 "blockmask:", "    .quad 512   ; 1 << (SIGUSR1 - 1)"]
    if "pipes" in case.features:
        lines += [
            "    mov rax, 22         ; pipe(pipefds)",
            "    mov rdi, pipefds", "    syscall",
        ]
        data += ["pipefds:", "    .quad 0",
                 "pipebuf:", "    .zero 16"]
    for worker in range(workers):
        lines += [
            "    mov rax, 56         ; clone worker %d" % worker,
            "    mov rdi, 0x100",
            "    mov rsi, wstack%d_top" % worker,
            "    mov rdx, worker%d" % worker,
            "    syscall",
        ]
        data += ["wflag%d:" % worker, "    .quad 0",
                 "    .zero 2048", "wstack%d_top:" % worker,
                 "    .quad 0"]

    actionable = [f for f in case.features
                  if f not in ("futex", "pmu", "aslr")]
    for index in range(case.iterations * 3):
        _main_action(rng.choice(actionable), rng, index, lines)

    # With workers around, the main thread does one read that can
    # genuinely block — worker 0 feeds the 4 bytes from its epilogue —
    # exercising the blocking-read park/re-execute path mid-program.
    if workers and "pipes" in case.features:
        lines += [
            "    mov rcx, pipefds",
            "    ld4 rdi, [rcx]      ; blocking read: worker 0 feeds it",
            "    mov rax, 0",
            "    mov rsi, pipebuf",
            "    mov rdx, 4",
            "    syscall",
            "    ld4 rcx, [pipebuf]",
            "    add rbx, rcx",
        ]

    # Join the workers: futex-wait until each posts its flag.
    for worker in range(workers):
        lines += [
            "wait%d:" % worker,
            "    ld4 rcx, [wflag%d]" % worker,
            "    cmp rcx, 0",
            "    jnz joined%d" % worker,
            "    mov rax, 202        ; futex(WAIT, wflag, 0)",
            "    mov rdi, wflag%d" % worker,
            "    mov rsi, 0", "    mov rdx, 0", "    syscall",
            "    jmp wait%d" % worker,
            "joined%d:" % worker,
            "    add rbx, rcx",
        ]

    if "pmu" in case.features:
        threshold = 16 + (case.seed % 23)  # lands mid-way through spin
        lines += [
            "    mov rax, 298        ; perf_event_open(INSTR, %d)" % threshold,
            "    mov rdi, 0", "    mov rsi, %d" % threshold,
            "    mov rdx, finish", "    syscall",
            "spin:",
            "    add rbx, 1", "    add rbx, 1", "    add rbx, 1",
            "    add rbx, 1", "    add rbx, 1",
            "    jmp spin",
        ]
    lines += [
        "finish:",
        "    mov rdi, rbx",
        "    and rdi, 0xff",
        "    mov rax, 231        ; exit_group(checksum)",
        "    syscall",
    ]
    for worker in range(workers):
        spins = 5 + 3 * worker + (case.seed % 7)
        if worker == 0 and ("signals" in case.features
                            or "pipes" in case.features):
            # Long enough that the main thread usually reaches its
            # blocking read / join futex wait first, so the epilogue's
            # pokes land on a genuinely parked thread.
            spins += 40
        lines += [
            "worker%d:" % worker,
            "    mov rcx, %d" % spins,
            "wloop%d:" % worker,
            "    add rdx, 3", "    sub rcx, 1", "    cmp rcx, 0",
            "    jnz wloop%d" % worker,
        ]
        if worker == 0:
            # Worker 0's epilogue pokes the main thread: a cross-thread
            # signal that can land while main sits in its join futex
            # wait (the -EINTR + handler + restart path), and the pipe
            # bytes that satisfy main's blocking read.
            if "signals" in case.features:
                lines += [
                    "    mov rax, 200        ; tkill(main, SIGUSR1)",
                    "    mov rdi, 0",
                    "    mov rsi, 10",
                    "    syscall",
                ]
            if "pipes" in case.features:
                lines += [
                    "    mov rcx, pipefds",
                    "    ld4 rdi, [rcx+4]",
                    "    mov rax, 1          ; feed main's blocking read",
                    "    mov rsi, msg",
                    "    mov rdx, 4",
                    "    syscall",
                ]
        lines += [
            "    mov rcx, 1",
            "    st4 [wflag%d], rcx" % worker,
            "    mov rax, 202        ; futex(WAKE, wflag, 1)",
            "    mov rdi, wflag%d" % worker,
            "    mov rsi, 1", "    mov rdx, 1", "    syscall",
            "    mov rax, 60         ; exit(0)",
            "    mov rdi, 0", "    syscall",
        ]
    if "signals" in case.features:
        # Registers are frame-saved/restored around delivery, so the
        # handler reports through memory; rdi holds the signal number.
        lines += [
            "sighandler:",
            "    ld rcx, [signote]",
            "    add rcx, rdi",
            "    st [signote], rcx",
            "    mov rax, 15         ; rt_sigreturn",
            "    syscall",
        ]
    if "smc" in case.features or "smcwrite" in case.features:
        lines += [
            "func:",
            "    mov rdx, 11",
            "    add rdx, rbx",
            "    and rdx, 0xff",
            "    ret",
            "func_end:",
            "    nop",
        ]
    return "\n".join(lines), "\n".join(data)


def _case_fs(case: FuzzCase) -> FileSystem:
    fs = FileSystem()
    if "files" in case.features:
        fs.create(_INPUT_PATH, _INPUT_BYTES)
    return fs


def build_case(case: FuzzCase) -> Tuple[bytes, FileSystem]:
    """Assemble the case's program; returns (ELF image, input fs)."""
    source, data = _program_source(case)
    return build_executable(source, data_source=data), _case_fs(case)


def _measure(image: bytes, fs: FileSystem, seed: int,
             aslr_seed: Optional[int] = None) -> Optional[int]:
    """Total icount of a clean native run, or None if it misbehaves."""
    machine = Machine(seed=seed, fs=fs)
    load_elf(machine, image, aslr_seed=aslr_seed)
    status = machine.run(max_instructions=2_000_000)
    if status.kind != "exit":
        return None
    return machine.executed_total


def _pick_marker_region(case: FuzzCase, image: bytes, fs: FileSystem,
                        seed: int) -> Optional[RegionSpec]:
    """A region whose boundaries land on work-marker crossings.

    Harvests the image's loop markers, profiles marker-delimited slices
    (a small slice granule — fuzz loops are short), and snaps the
    percentage window to slice boundaries: the start is a slice start,
    the end an *interior* slice boundary, so both edges are exact
    work-loop crossing counts the LoopPoint replay meter can find.

    Profiling always runs at the link-time base: an ASLR slide changes
    addresses, never control flow, so marker icounts are base-invariant.
    """
    from repro.looppoint.profile import collect_looppoint
    profile = collect_looppoint(image, slice_markers=4, seed=seed, fs=fs)
    slices = profile.slices
    if len(slices) < 2:
        return None  # loop-free: no interior marker boundary to cut at
    start_index = min(case.region_pos * len(slices) // 100,
                      len(slices) - 2)
    start = slices[start_index].start_icount
    target = max(1, profile.total_icount * case.region_len_pct // 100)
    end_index = start_index
    while (end_index < len(slices) - 2
           and slices[end_index].end_icount - start < target):
        end_index += 1
    length = slices[end_index].end_icount - start
    if length < 4:
        return None
    return RegionSpec(start=start, length=length, warmup=0,
                      name=case.name)


def _pick_region(case: FuzzCase, total: int) -> Optional[RegionSpec]:
    if total < 16:
        return None
    start = min(total * case.region_pos // 100, total - 8)
    length = max(8, total * case.region_len_pct // 100)
    length = min(length, total - start - 1)
    if length < 4:
        start = 0
        length = max(8, total // 2)
    return RegionSpec(start=start, length=length, warmup=0,
                      name=case.name)


def _dispatch_divergence(case: FuzzCase, image: bytes, seed: int,
                         dispatch: str) -> str:
    """Arch-state diff between the selected tier and the slow loop.

    Runs the case natively twice — once per tier, each on a fresh
    filesystem — and compares exit status plus every thread's retired
    counters and final registers.  A non-empty string is the divergence
    detail; bit-identity across dispatch tiers is the fast path's
    ground-truth contract.
    """
    states = {}
    for tier in (dispatch, "slow"):
        prev = set_default_dispatch(tier)
        try:
            machine = Machine(seed=seed, fs=_case_fs(case))
            load_elf(machine, image, aslr_seed=case.aslr_seed)
            status = machine.run(max_instructions=2_000_000)
        finally:
            set_default_dispatch(prev)
        states[tier] = (status.kind, status.code, tuple(sorted(
            (t.tid, t.icount, t.cycles, t.branches, t.llc_misses,
             tuple(t.regs.gpr), t.regs.rip, t.regs.flags.to_word())
            for t in machine.threads.values())))
    if states[dispatch] != states["slow"]:
        return ("architectural state diverged between %r and slow "
                "dispatch" % dispatch)
    return ""


def run_case(case: FuzzCase, seed: int = 0, check_elfie: bool = True,
             dispatch: Optional[str] = None) -> FuzzOutcome:
    """Drive one case through record -> replay -> ELFie verification.

    With *dispatch*, every Machine in the pipeline runs on that dispatch
    tier, and the case is first cross-checked tier-vs-slow natively
    (stage "dispatch" on mismatch).
    """
    if dispatch is not None:
        previous = set_default_dispatch(dispatch)
        try:
            if dispatch != "slow":
                try:
                    image, _ = build_case(case)
                except Exception as exc:
                    return FuzzOutcome(case=case, ok=False, stage="build",
                                       detail=str(exc))
                detail = _dispatch_divergence(case, image, seed, dispatch)
                if detail:
                    return FuzzOutcome(case=case, ok=False,
                                       stage="dispatch", detail=detail)
            return run_case(case, seed=seed, check_elfie=check_elfie)
        finally:
            set_default_dispatch(previous)
    try:
        image, fs = build_case(case)
    except Exception as exc:  # generator produced unassemblable code
        return FuzzOutcome(case=case, ok=False, stage="build",
                           detail=str(exc))
    total = _measure(image, fs, seed, aslr_seed=case.aslr_seed)
    if total is None:
        return FuzzOutcome(case=case, ok=False, stage="build",
                           detail="native run did not exit gracefully")
    if case.region_marker:
        region = _pick_marker_region(case, image, _case_fs(case), seed)
        if region is None:
            return FuzzOutcome(case=case, ok=False, stage="build",
                               detail="no interior work-marker boundary "
                                      "for a marker-delimited region")
    else:
        region = _pick_region(case, total)
        if region is None:
            return FuzzOutcome(case=case, ok=False, stage="build",
                               detail="program too short (%d instructions)"
                               % total)
    try:
        pinball = log_region(image, region, seed=seed, fs=_case_fs(case),
                             options=LogOptions(name=case.name),
                             aslr_seed=case.aslr_seed)
    except Exception as exc:
        return FuzzOutcome(case=case, ok=False, stage="record",
                           detail=str(exc))

    report = verify_pinball(image, pinball, seed=seed, fs=_case_fs(case),
                            aslr_seed=case.aslr_seed)
    if not report.ok:
        return FuzzOutcome(case=case, ok=False, stage="replay",
                           detail=str(report.divergence), report=report)

    if check_elfie:
        state = extract_sysstate(pinball)
        elfie_fs = _case_fs(case)
        workdir = state.write_to(elfie_fs)
        artifact = Pinball2Elf(
            pinball, Pinball2ElfOptions(sysstate=state)).convert()
        entry = verify_elfie_entry(artifact.image, pinball, seed=seed,
                                   fs=elfie_fs, workdir=workdir)
        if not entry.ok:
            return FuzzOutcome(case=case, ok=False, stage="elfie",
                               detail=entry.detail, report=report)
    return FuzzOutcome(case=case, ok=True, report=report)


def aslr_invariance(case: FuzzCase, aslr_seed: int,
                    seed: int = 0) -> FuzzOutcome:
    """Check that region selection and replay are invariant to the base.

    Builds *case*'s workload once, selects one icount window, and
    captures it twice — at the link base and at the ``aslr_seed`` slide.
    The slid capture must replay bit-identically against its own native
    run (the lockstep digest verifier), and the two captures must
    describe the same architectural work: same tids, same per-thread
    region icounts, every thread's entry rip displaced by exactly the
    slide, and the same in-region syscall sequence.
    """
    from repro.machine.loader import aslr_slide
    from repro.pinplay.replayer import replay

    try:
        image, _ = build_case(case)
    except Exception as exc:
        return FuzzOutcome(case=case, ok=False, stage="build",
                           detail=str(exc))
    totals = [_measure(image, _case_fs(case), seed, aslr_seed=aslr)
              for aslr in (None, aslr_seed)]
    if None in totals:
        return FuzzOutcome(case=case, ok=False, stage="build",
                           detail="native run did not exit gracefully")
    if totals[0] != totals[1]:
        return FuzzOutcome(
            case=case, ok=False, stage="aslr",
            detail="whole-run icount not slide-invariant: %d at base, "
                   "%d slid" % (totals[0], totals[1]))
    region = _pick_region(case, totals[0])
    if region is None:
        return FuzzOutcome(case=case, ok=False, stage="build",
                           detail="program too short (%d instructions)"
                           % totals[0])
    pinballs = []
    for aslr in (None, aslr_seed):
        try:
            pinball = log_region(image, region, seed=seed,
                                 fs=_case_fs(case),
                                 options=LogOptions(name=case.name),
                                 aslr_seed=aslr)
        except Exception as exc:
            return FuzzOutcome(case=case, ok=False, stage="record",
                               detail=str(exc))
        result = replay(pinball)
        if result.diverged is not None:
            return FuzzOutcome(case=case, ok=False, stage="replay",
                               detail=str(result.diverged))
        pinballs.append(pinball)
    report = verify_pinball(image, pinballs[1], seed=seed,
                            fs=_case_fs(case), aslr_seed=aslr_seed)
    if not report.ok:
        return FuzzOutcome(case=case, ok=False, stage="replay",
                           detail=str(report.divergence), report=report)
    slide = aslr_slide(aslr_seed)
    plain, slid = pinballs
    base_threads = {t.tid: t for t in plain.threads}
    slid_threads = {t.tid: t for t in slid.threads}
    if sorted(base_threads) != sorted(slid_threads):
        return FuzzOutcome(case=case, ok=False, stage="aslr",
                           detail="captured thread sets differ across bases")
    for tid, base_thread in base_threads.items():
        other = slid_threads[tid]
        if base_thread.region_icount != other.region_icount:
            return FuzzOutcome(
                case=case, ok=False, stage="aslr",
                detail="tid %d region icount differs across bases: "
                       "%d vs %d" % (tid, base_thread.region_icount,
                                     other.region_icount))
        if base_thread.regs.rip + slide != other.regs.rip:
            return FuzzOutcome(
                case=case, ok=False, stage="aslr",
                detail="tid %d entry rip not displaced by the slide: "
                       "0x%x vs 0x%x (slide 0x%x)"
                       % (tid, base_thread.regs.rip, other.regs.rip, slide))
    base_calls = [(r.tid, r.number) for r in plain.syscalls]
    slid_calls = [(r.tid, r.number) for r in slid.syscalls]
    if base_calls != slid_calls:
        return FuzzOutcome(case=case, ok=False, stage="aslr",
                           detail="in-region syscall sequence differs "
                                  "across bases")
    return FuzzOutcome(case=case, ok=True, report=report)


# -- minimization ------------------------------------------------------------


def _reductions(case: FuzzCase) -> List[FuzzCase]:
    """Candidate simpler cases, most aggressive first."""
    out: List[FuzzCase] = []
    for feature in case.features:
        if feature == "arith":
            continue
        smaller = tuple(f for f in case.features if f != feature)
        candidate = replace(case, features=smaller)
        if "futex" not in smaller:
            candidate = replace(candidate, threads=1)
        out.append(candidate)
    if case.threads > 2:
        out.append(replace(case, threads=case.threads - 1))
    if case.iterations > 1:
        out.append(replace(case, iterations=case.iterations // 2))
    if case.region_marker:
        out.append(replace(case, region_marker=False))
    if case.region_pos > 0:
        out.append(replace(case, region_pos=0))
    if case.region_len_pct < 100:
        out.append(replace(case, region_len_pct=100))
    return out


def minimize_case(case: FuzzCase, seed: int = 0, max_steps: int = 32,
                  dispatch: Optional[str] = None) -> FuzzCase:
    """Greedily shrink a failing case while it keeps failing."""
    outcome = run_case(case, seed=seed, dispatch=dispatch)
    if outcome.ok:
        return case
    steps = 0
    changed = True
    while changed and steps < max_steps:
        changed = False
        for candidate in _reductions(case):
            steps += 1
            if not run_case(candidate, seed=seed,
                            dispatch=dispatch).is_divergence:
                continue
            case = candidate
            changed = True
            break
    return case


# -- the fuzz loop ------------------------------------------------------------


@dataclass
class FuzzSummary:
    """Aggregate result of one fuzz campaign."""

    cases_run: int = 0
    invalid: int = 0
    failures: List[FuzzOutcome] = field(default_factory=list)
    minimized: Dict[int, FuzzCase] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def _load_fuzz_checkpoint(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _save_fuzz_checkpoint(path: str, next_seed: int,
                          summary: FuzzSummary) -> None:
    state = {
        "next_seed": next_seed,
        "cases_run": summary.cases_run,
        "invalid": summary.invalid,
        "failures": [{"case": outcome.case.to_json(),
                      "stage": outcome.stage,
                      "detail": outcome.detail}
                     for outcome in summary.failures],
        "minimized": {str(seed): case.to_json()
                      for seed, case in summary.minimized.items()},
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(state, handle, indent=1)
    os.replace(tmp, path)


def fuzz(time_budget: float = 30.0, start_seed: int = 0,
         max_cases: Optional[int] = None, seed: int = 0,
         minimize: bool = True,
         checkpoint_path: Optional[str] = None,
         dispatch: Optional[str] = None) -> FuzzSummary:
    """Generate and verify cases until the wall-clock budget expires.

    Failing cases are minimized (when *minimize* is set) and collected;
    the CLI persists them into the regression corpus.  *dispatch* pins
    every pipeline Machine to one dispatch tier and adds a native
    tier-vs-slow cross-check per case.

    With *checkpoint_path*, the campaign persists its progress (next
    seed, counters, failures) to that JSON file after every case and
    resumes from it on the next invocation — and it also polls the
    process preemption context so a draining worker's SIGTERM ends the
    campaign at a case boundary with the checkpoint current.
    """
    obs = hooks.OBS
    summary = FuzzSummary()
    case_seed = start_seed
    if checkpoint_path:
        state = _load_fuzz_checkpoint(checkpoint_path)
        if state is not None:
            case_seed = int(state.get("next_seed", start_seed))
            summary.cases_run = int(state.get("cases_run", 0))
            summary.invalid = int(state.get("invalid", 0))
            for record in state.get("failures", []):
                failed = FuzzCase.from_json(record["case"])
                summary.failures.append(FuzzOutcome(
                    case=failed, ok=False, stage=record["stage"],
                    detail=record["detail"]))
            for key, value in state.get("minimized", {}).items():
                summary.minimized[int(key)] = FuzzCase.from_json(value)
    deadline = time.monotonic() + time_budget
    while time.monotonic() < deadline:
        if max_cases is not None and summary.cases_run >= max_cases:
            break
        if checkpoint_path:
            from repro.snapshot import preempt
            if preempt.requested():
                break  # drain: the checkpoint already holds the progress
        case = generate_case(case_seed)
        case_seed += 1
        outcome = run_case(case, seed=seed, dispatch=dispatch)
        summary.cases_run += 1
        if obs.enabled:
            obs.count("verify.fuzz_cases")
        if outcome.ok:
            pass
        elif not outcome.is_divergence:
            summary.invalid += 1
        else:
            if obs.enabled:
                obs.count("verify.fuzz_failures")
                obs.instant("verify.fuzz_failure", "verify",
                            case=case.to_json(), stage=outcome.stage,
                            detail=outcome.detail)
            if minimize:
                summary.minimized[case.seed] = minimize_case(
                    case, seed=seed, dispatch=dispatch)
            summary.failures.append(outcome)
        if checkpoint_path:
            _save_fuzz_checkpoint(checkpoint_path, case_seed, summary)
    return summary
