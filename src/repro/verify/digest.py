"""Architectural-state and memory digests — the verifier's epoch keys.

A digest covers exactly the state the paper requires to be
bit-identical: per-thread GPRs, RIP, RFLAGS, the FS/GS bases, and the
XSAVE area (XMM registers + MXCSR), plus the mapped-page image.  Two
executions whose digests agree at an epoch boundary are — at that
boundary — architecturally indistinguishable.

The memory digest hashes the full mapped image (optionally restricted
to a page set).  At this reproduction's scale that is cheap, and unlike
a pure dirty-page hash it also covers pages written behind the CPU's
back by injected syscall side-effects.  The :class:`DirtyPageTracker`
tool narrows the *diff report* to pages the epoch actually touched.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Set

from repro.machine.memory import PAGE_SHIFT
from repro.machine.tool import Tool

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine, Thread

MASK64 = (1 << 64) - 1


def thread_state_bytes(thread: "Thread") -> bytes:
    """Canonical byte encoding of one thread's architectural state."""
    regs = thread.regs
    return b"".join((
        struct.pack("<qBB", thread.tid,
                    1 if thread.alive else 0,
                    1 if thread.blocked else 0),
        struct.pack("<16Q", *(value & MASK64 for value in regs.gpr)),
        struct.pack("<QQQQ", regs.rip & MASK64, regs.flags.to_word(),
                    regs.fs_base & MASK64, regs.gs_base & MASK64),
        regs.xsave_bytes(),
    ))


def arch_digest(machine: "Machine",
                tids: Optional[Iterable[int]] = None) -> str:
    """Digest of every thread's architectural state (tid-sorted).

    *tids* restricts the digest to a comparable thread set — the
    verifier uses it to ignore threads that died before the region
    started (present in the original machine, absent from a pinball).
    """
    keep = set(tids) if tids is not None else None
    digest = hashlib.sha256()
    for tid in sorted(machine.threads):
        if keep is not None and tid not in keep:
            continue
        digest.update(thread_state_bytes(machine.threads[tid]))
    return digest.hexdigest()


def memory_digest(machine: "Machine",
                  pages: Optional[Iterable[int]] = None) -> str:
    """Digest of the mapped memory image (page index, prot, contents).

    *pages* (page indices, i.e. ``addr >> 12``) restricts the digest —
    used when comparing against an ELFie machine whose image legitimately
    contains extra startup sections.
    """
    mem = machine.mem
    mapped = mem.mapped_pages()
    if pages is not None:
        wanted = set(pages)
        mapped = [page for page in mapped if page in wanted]
    perms = mem.snapshot_perms()
    digest = hashlib.sha256()
    for page in mapped:
        digest.update(struct.pack("<QI", page, perms[page]))
        digest.update(mem.page_bytes(page))
    return digest.hexdigest()


@dataclass(frozen=True)
class EpochDigest:
    """The digest pair taken at one epoch boundary."""

    index: int            # epoch number (0-based); -1 = initial state
    icount: int           # region-relative instructions retired
    arch: str
    mem: str

    @property
    def key(self) -> str:
        return self.arch + ":" + self.mem

    def matches(self, other: "EpochDigest") -> bool:
        return self.arch == other.arch and self.mem == other.mem


def epoch_digest(machine: "Machine", index: int, icount: int,
                 pages: Optional[Iterable[int]] = None,
                 tids: Optional[Iterable[int]] = None) -> EpochDigest:
    return EpochDigest(index=index, icount=icount,
                       arch=arch_digest(machine, tids=tids),
                       mem=memory_digest(machine, pages=pages))


class DirtyPageTracker(Tool):
    """Collects the pages written since the last :meth:`take`.

    Attached by the verifier to both cursors; the dirty union focuses
    the side-by-side memory diff on pages the epoch touched.  CPU-level
    stores arrive through the memory-write hook (which fires on the
    superblock fast path); native syscall side-effects are harvested
    from ``kernel.last_effects`` after each non-suppressed call.
    Injected syscall writes bypass both, which is why the *digest*
    hashes the full image rather than trusting this set.
    """

    wants_instructions = False
    wants_memory = True
    wants_blocks = False

    def __init__(self) -> None:
        self.dirty: Set[int] = set()

    def on_memory_write(self, machine, thread, addr, size) -> None:
        first = addr >> PAGE_SHIFT
        last = (addr + max(size, 1) - 1) >> PAGE_SHIFT
        self.dirty.add(first)
        if last != first:
            self.dirty.update(range(first + 1, last + 1))

    def on_syscall_after(self, machine, thread, number, result) -> None:
        for addr, data in machine.kernel.last_effects:
            first = addr >> PAGE_SHIFT
            last = (addr + max(len(data), 1) - 1) >> PAGE_SHIFT
            self.dirty.update(range(first, last + 1))

    def take(self) -> Set[int]:
        """Return and reset the dirty set."""
        dirty = self.dirty
        self.dirty = set()
        return dirty
